// Command pagerank computes the exact PageRank vector of a graph by
// multicore power iteration and prints the top-k vertices — the ground
// truth against which FrogWild's approximation is judged. The result
// is bit-identical for any -workers setting.
//
// Usage:
//
//	pagerank -graph tw.bin.gz -k 20
//	gengraph -type rmat -scale 14 -out /tmp/g.bin && pagerank -graph /tmp/g.bin
package main

import (
	"flag"
	"fmt"
	"os"

	"repro"
)

func main() {
	var (
		path     = flag.String("graph", "", "graph file (edge list or binary; required)")
		k        = flag.Int("k", 20, "how many top vertices to print")
		teleport = flag.Float64("teleport", repro.DefaultTeleport, "teleportation probability pT")
		tol      = flag.Float64("tol", 1e-12, "L1 convergence tolerance")
		workers  = flag.Int("workers", 0, "worker goroutines for the inner loop (0 = all cores, 1 = serial)")
	)
	flag.Parse()
	if *path == "" {
		fmt.Fprintln(os.Stderr, "pagerank: -graph is required")
		flag.Usage()
		os.Exit(2)
	}
	g, err := repro.LoadGraph(*path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pagerank: %v\n", err)
		os.Exit(1)
	}
	res, err := repro.ExactPageRank(g, repro.PageRankOptions{Teleport: *teleport, Tolerance: *tol, Workers: *workers})
	if err != nil {
		fmt.Fprintf(os.Stderr, "pagerank: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("graph: %d vertices, %d edges\n", g.NumVertices(), g.NumEdges())
	fmt.Printf("converged=%v iterations=%d residual=%.3e\n", res.Converged, res.Iterations, res.Residual)
	fmt.Printf("%-8s %-10s %s\n", "rank", "vertex", "pagerank")
	for i, e := range repro.TopK(res.Rank, *k) {
		fmt.Printf("%-8d %-10d %.6e\n", i+1, e.Vertex, e.Score)
	}
}
