// Command prshard is one worker of a sharded top-k PageRank cluster:
// it owns one HDRF partition of the vertex space and answers partial
// top-k/rank queries over a small length-prefixed RPC protocol, to be
// fronted by a prserve router (-shards).
//
// Every shard of a cluster runs with the same -graph/-gen, -shards,
// -engine and -seed flags and a distinct -shard id. Each shard builds
// the same graph and the same deterministic estimate, computes the
// same HDRF layout, and then serves only the vertices whose master
// replica the layout puts on its id — so the shard ownership sets
// partition the vertex space with no coordination, and the router's
// merged top-k is exactly the single-node answer.
//
// Usage:
//
//	prshard -addr 127.0.0.1:9001 -shard 0 -shards 4 -gen twitterlike -n 50000
//	prshard -addr 127.0.0.1:9002 -shard 1 -shards 4 -gen twitterlike -n 50000
//	prserve -addr :8080 -shards 127.0.0.1:9001,127.0.0.1:9002,...
//
// The shard keeps its previous snapshot alongside the current one, so
// a router can re-ask at the older epoch while a refresh rolls across
// the cluster. SIGINT/SIGTERM shut the shard down.
//
// Observability: -metrics-addr serves the Prometheus exposition
// (shard ops, frame bytes, snapshot epoch/age, refresher stages) on an
// HTTP side listener, -log-requests writes one JSON line per RPC to
// stderr carrying the router-propagated request id, and -pprof-addr
// serves net/http/pprof.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	_ "net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro"
	"repro/internal/obs"
	"repro/internal/router"
	"repro/internal/serve"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	os.Exit(run(ctx, os.Args[1:], os.Stderr, nil, nil))
}

// run is the testable CLI body. onReady, when non-nil, receives the
// bound RPC listen address once the shard is serving; onMetrics
// likewise receives the bound -metrics-addr address.
func run(ctx context.Context, args []string, stderr io.Writer, onReady, onMetrics func(addr string)) int {
	fs := flag.NewFlagSet("prshard", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr     = fs.String("addr", "127.0.0.1:9001", "RPC listen address")
		shard    = fs.Int("shard", 0, "this shard's id, 0-based")
		shards   = fs.Int("shards", 1, "total shard count in the cluster")
		path     = fs.String("graph", "", "graph file (gstore CSR, binary, or edge list; auto-detected)")
		genType  = fs.String("gen", "", "generate instead of load: twitterlike|livejournallike")
		n        = fs.Int("n", 50000, "vertex count when generating")
		cache    = fs.String("graph-cache", "", "gstore CSR cache file: mmap it if present, else build and save it")
		graphMem = fs.String("graph-mem", "", "page adjacency from the gstore file under this byte budget (e.g. 512MiB); needs -graph-cache or a .csr -graph")
		relabel  = fs.Bool("graph-relabel", false, "degree-order vertex rows when building the graph cache (external ids unchanged)")
		engine   = fs.String("engine", "frogwild", "estimate engine: frogwild|glpr|exact")
		machines = fs.Int("machines", 16, "simulated cluster size for the estimate engine")
		maxK     = fs.Int("maxk", serve.DefaultMaxK, "precomputed top index size")
		refresh  = fs.Duration("refresh", 0, "background recompute cadence (0 = serve the initial snapshot forever)")
		seed     = fs.Uint64("seed", 1, "base seed; must match across the cluster and the router's graph")
		metrics  = fs.String("metrics-addr", "", "serve the Prometheus exposition on this HTTP side address (e.g. 127.0.0.1:9101)")
		logReq   = fs.Bool("log-requests", false, "write one JSON line per shard RPC to stderr (rid, op, status, duration)")
		pprof    = fs.String("pprof-addr", "", "serve net/http/pprof on this side address (e.g. 127.0.0.1:6061)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *shards < 1 || *shard < 0 || *shard >= *shards {
		fmt.Fprintf(stderr, "prshard: -shard %d out of range for -shards %d\n", *shard, *shards)
		fs.Usage()
		return 2
	}
	eng, err := serve.ParseEngine(*engine)
	if err != nil {
		fmt.Fprintf(stderr, "prshard: %v\n", err)
		fs.Usage()
		return 2
	}

	buildGraph := func() (*repro.Graph, error) {
		switch {
		case *path != "":
			return repro.LoadGraph(*path)
		case *genType == "twitterlike":
			return repro.TwitterLikeGraph(*n, *seed)
		case *genType == "livejournallike":
			return repro.LiveJournalLikeGraph(*n, *seed)
		}
		return nil, fmt.Errorf("provide -graph FILE, -gen twitterlike|livejournallike, or an existing -graph-cache")
	}
	genN := 0
	if *path == "" && *genType != "" {
		genN = *n
	}
	var memBytes int64
	if *graphMem != "" {
		if memBytes, err = repro.ParseByteSize(*graphMem); err != nil {
			fmt.Fprintf(stderr, "prshard: -graph-mem: %v\n", err)
			fs.Usage()
			return 2
		}
	}
	loadStart := time.Now()
	var g *repro.Graph
	if memBytes > 0 && *cache == "" && *path != "" {
		g, err = repro.LoadGraphPaged(*path, memBytes)
	} else {
		g, err = repro.CachedGraphCheckedWith(*cache,
			repro.GraphCacheOptions{Mem: memBytes, Relabel: *relabel}, genN, buildGraph)
	}
	if err != nil {
		fmt.Fprintf(stderr, "prshard: %v\n", err)
		return 1
	}
	defer g.Close()

	owned, err := router.OwnedVertices(g, *shards, *shard, *seed)
	if err != nil {
		fmt.Fprintf(stderr, "prshard: %v\n", err)
		return 1
	}
	log.Printf("prshard: shard %d/%d owns %d of %d vertices (graph ready in %.3fs)",
		*shard, *shards, len(owned), g.NumVertices(), time.Since(loadStart).Seconds())

	reg := obs.NewRegistry()
	store := serve.NewStore()
	refresher := serve.NewRefresher(store, serve.EngineBuilder(g, serve.BuildConfig{
		Engine:   eng,
		Machines: *machines,
		Seed:     *seed,
		MaxK:     *maxK,
	}), *refresh)
	refresher.Instrument(reg)
	buildStart := time.Now()
	if _, err := refresher.Refresh(); err != nil {
		fmt.Fprintf(stderr, "prshard: initial snapshot: %v\n", err)
		return 1
	}
	snap := store.Current()
	log.Printf("prshard: snapshot epoch %d (%s, seed %d) ready in %.2fs",
		snap.Epoch, snap.Engine, snap.Seed, time.Since(buildStart).Seconds())
	if *refresh > 0 {
		go refresher.Run(ctx, func(err error) { log.Printf("prshard: refresh: %v", err) })
		log.Printf("prshard: background refresh every %s", *refresh)
	}

	srv := router.NewShardServer(*shard, *shards, owned, store)
	srv.Instrument(reg)
	if *logReq {
		srv.SetRequestLog(obs.NewLogger(stderr))
	}
	if *metrics != "" {
		mln, err := net.Listen("tcp", *metrics)
		if err != nil {
			fmt.Fprintf(stderr, "prshard: metrics listener: %v\n", err)
			return 1
		}
		mmux := http.NewServeMux()
		mmux.Handle("/metrics", reg.Handler())
		log.Printf("prshard: serving /metrics on %s", mln.Addr())
		if onMetrics != nil {
			onMetrics(mln.Addr().String())
		}
		go func() {
			if err := obs.ServeListener(ctx, mln, mmux); err != nil {
				log.Printf("prshard: metrics listener: %v", err)
			}
		}()
	}
	if *pprof != "" {
		log.Printf("prshard: serving pprof on %s", *pprof)
		go func() {
			// nil handler would also work: the pprof import registers
			// itself on http.DefaultServeMux.
			if err := obs.ListenAndServe(ctx, *pprof, http.DefaultServeMux); err != nil {
				log.Printf("prshard: pprof listener: %v", err)
			}
		}()
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(stderr, "prshard: %v\n", err)
		return 1
	}
	log.Printf("prshard: serving shard RPC on %s", ln.Addr())
	if onReady != nil {
		onReady(ln.Addr().String())
	}
	if err := srv.Serve(ctx, ln); err != nil {
		fmt.Fprintf(stderr, "prshard: %v\n", err)
		return 1
	}
	log.Printf("prshard: graceful shutdown after %d queries", srv.Queries())
	return 0
}
