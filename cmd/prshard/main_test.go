package main

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro"
	"repro/internal/obs"
	"repro/internal/router"
	"repro/internal/serve"
)

// TestPrshardClusterMatchesSingleNode boots a real 2-shard cluster
// through the CLI entry point (TCP listeners on ephemeral ports),
// fronts it with a router, and checks the merged answers are
// byte-identical to a single-node server over the same deterministic
// snapshot — then shuts everything down gracefully.
func TestPrshardClusterMatchesSingleNode(t *testing.T) {
	const (
		shards = 2
		n      = 3000
		seed   = 1
	)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	addrs := make([]chan string, shards)
	exits := make([]chan int, shards)
	metricsAddr := make(chan string, 1)
	for i := 0; i < shards; i++ {
		addrs[i] = make(chan string, 1)
		exits[i] = make(chan int, 1)
		args := []string{
			"-addr", "127.0.0.1:0",
			"-shard", fmt.Sprint(i), "-shards", fmt.Sprint(shards),
			"-gen", "twitterlike", "-n", fmt.Sprint(n),
			"-engine", "exact", "-seed", fmt.Sprint(seed),
		}
		var onMetrics func(string)
		if i == 0 {
			args = append(args, "-metrics-addr", "127.0.0.1:0")
			onMetrics = func(a string) { metricsAddr <- a }
		}
		ch := addrs[i]
		ex := exits[i]
		go func() { ex <- run(ctx, args, io.Discard, func(a string) { ch <- a }, onMetrics) }()
	}
	clients := make([]*router.ShardClient, shards)
	for i, ch := range addrs {
		select {
		case addr := <-ch:
			clients[i] = router.NewShardClient(i, addr, router.DialTCP(addr), 5*time.Second)
		case <-time.After(60 * time.Second):
			t.Fatalf("shard %d did not come up", i)
		}
	}
	rt := router.New(clients, router.Options{})

	g, err := repro.TwitterLikeGraph(n, seed)
	if err != nil {
		t.Fatal(err)
	}
	snap, err := serve.Build(g, serve.BuildConfig{
		Engine: serve.EngineExact, Machines: 16, Seed: seed, MaxK: serve.DefaultMaxK,
	})
	if err != nil {
		t.Fatal(err)
	}
	store := serve.NewStore()
	store.Publish(snap)
	single := serve.NewServer(store, serve.ServerOptions{})

	get := func(h http.Handler, url string) (int, string) {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, url, nil))
		return rec.Code, rec.Body.String()
	}
	for _, url := range []string{"/v1/topk?k=15", "/v1/topk?k=100", "/v1/rank?vertex=42"} {
		sc, sb := get(single, url)
		rc, rb := get(rt, url)
		if sc != http.StatusOK || rc != http.StatusOK {
			t.Fatalf("%s: status single=%d router=%d (%s)", url, sc, rc, rb)
		}
		if sb != rb {
			t.Fatalf("%s: cluster body diverged from single-node\nsingle: %.200s\nrouter: %.200s", url, sb, rb)
		}
	}
	if ns := rt.NetworkStats(); ns.BytesSent == 0 || ns.BytesRecv == 0 {
		t.Fatalf("no wire bytes metered: %+v", ns)
	}

	// Shard 0 ran with -metrics-addr: its side listener must serve a
	// parseable Prometheus exposition reflecting the traffic above.
	select {
	case maddr := <-metricsAddr:
		resp, err := http.Get("http://" + maddr + "/metrics")
		if err != nil {
			t.Fatalf("scrape shard metrics: %v", err)
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil || resp.StatusCode != http.StatusOK {
			t.Fatalf("scrape shard metrics: status %d err %v", resp.StatusCode, err)
		}
		series, err := obs.ParseText(body)
		if err != nil {
			t.Fatalf("shard exposition does not parse: %v", err)
		}
		if got := obs.FamilySum(series, "shard_requests_total"); got <= 0 {
			t.Fatalf("shard_requests_total = %v after %d queries", got, rt.Queries())
		}
		if got := obs.FamilySum(series, "refresh_builds_total"); got != 1 {
			t.Fatalf("refresh_builds_total = %v, want 1", got)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("shard 0 never reported its metrics address")
	}

	cancel()
	for i, ex := range exits {
		select {
		case code := <-ex:
			if code != 0 {
				t.Fatalf("shard %d exited %d", i, code)
			}
		case <-time.After(30 * time.Second):
			t.Fatalf("shard %d did not shut down", i)
		}
	}
}

// TestPrshardUsageErrors pins the exit-code contract for bad flags.
func TestPrshardUsageErrors(t *testing.T) {
	cases := [][]string{
		{"-shard", "3", "-shards", "2", "-gen", "twitterlike"},
		{"-shards", "0", "-gen", "twitterlike"},
		{"-engine", "nope", "-gen", "twitterlike"},
		{"-bogus"},
	}
	for _, args := range cases {
		if code := run(context.Background(), args, io.Discard, nil, nil); code != 2 {
			t.Fatalf("args %v: exit %d, want 2", args, code)
		}
	}
}
