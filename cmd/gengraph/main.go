// Command gengraph generates synthetic directed graphs in the shapes
// the FrogWild reproduction uses (power-law "twitterlike" /
// "livejournallike" presets, custom power-law, R-MAT, Erdős–Rényi) and
// writes them as edge-list text, compact binary, or the mmap-able
// gstore CSR format (gzipped when the output path ends in .gz).
//
// Usage:
//
//	gengraph -type twitterlike -n 100000 -seed 42 -out tw.bin.gz
//	gengraph -type twitterlike -n 100000 -format csr -out tw.csr
//	gengraph -type powerlaw -n 50000 -mean 12 -degexp 2.1 -out g.txt
//	gengraph -type rmat -scale 18 -edgefactor 16 -out rmat.bin
//	gengraph -type er -n 10000 -m 100000 -out er.txt.gz
//
// -format selects the output encoding explicitly: edgelist, binary, or
// csr (the gstore format prserve/prload can mmap via -graph-cache).
// The default, auto, keeps the historical suffix behavior: paths
// containing ".bin" get binary, everything else edge-list text.
// Unknown values are a usage error (exit code 2).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable CLI body. Exit codes: 0 success, 1 runtime
// failure, 2 usage error.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("gengraph", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		typ        = fs.String("type", "twitterlike", "graph type: twitterlike|livejournallike|powerlaw|rmat|er")
		n          = fs.Int("n", 100000, "vertex count (twitterlike/livejournallike/powerlaw/er)")
		m          = fs.Int64("m", 0, "edge count (er; default 10n)")
		mean       = fs.Float64("mean", 12, "mean out-degree (powerlaw)")
		degExp     = fs.Float64("degexp", 2.1, "out-degree Zipf exponent (powerlaw)")
		prefExp    = fs.Float64("prefexp", 1.0, "destination popularity exponent (powerlaw)")
		scale      = fs.Int("scale", 16, "log2 vertex count (rmat)")
		edgeFactor = fs.Int("edgefactor", 16, "edges per vertex (rmat)")
		seed       = fs.Uint64("seed", 1, "generator seed")
		out        = fs.String("out", "", "output path (required; .gz compresses)")
		format     = fs.String("format", "auto", "output format: auto|edgelist|binary|csr (auto: .bin selects binary, else edge list)")
		stats      = fs.Bool("stats", true, "print graph statistics")
		target     = fs.String("target-bytes", "", "size -n so the gstore CSR encoding lands near this byte budget (e.g. 256MiB); overrides -n, rmat unsupported")
		relabel    = fs.Bool("relabel", false, "degree-order vertex rows before saving (csr: clusters hot vertices onto hot pages, external ids unchanged)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *target != "" {
		tb, err := repro.ParseByteSize(*target)
		if err != nil {
			fmt.Fprintf(stderr, "gengraph: -target-bytes: %v\n", err)
			fs.Usage()
			return 2
		}
		sized, err := sizeForBytes(tb, *typ, *mean, *m, *relabel)
		if err != nil {
			fmt.Fprintf(stderr, "gengraph: %v\n", err)
			fs.Usage()
			return 2
		}
		*n = sized
	}
	if *out == "" {
		fmt.Fprintln(stderr, "gengraph: -out is required")
		fs.Usage()
		return 2
	}
	// Resolve the writer up front so a bad -format is rejected before
	// minutes of generation work.
	var save func(string, *repro.Graph) error
	switch *format {
	case "auto":
		if strings.Contains(*out, ".bin") {
			save = repro.SaveGraphBinary
		} else {
			save = repro.SaveGraph
		}
	case "edgelist":
		save = repro.SaveGraph
	case "binary":
		save = repro.SaveGraphBinary
	case "csr":
		save = repro.SaveGraphCSR
	default:
		fmt.Fprintf(stderr, "gengraph: unknown -format %q (want auto|edgelist|binary|csr)\n", *format)
		fs.Usage()
		return 2
	}

	var (
		g   *repro.Graph
		err error
	)
	switch *typ {
	case "twitterlike":
		g, err = repro.TwitterLikeGraph(*n, *seed)
	case "livejournallike":
		g, err = repro.LiveJournalLikeGraph(*n, *seed)
	case "powerlaw":
		g, err = repro.PowerLawGraph(repro.PowerLawConfig{
			N: *n, MeanOutDeg: *mean, DegExponent: *degExp, PrefExponent: *prefExp, Seed: *seed,
		})
	case "rmat":
		g, err = repro.RMATGraph(*scale, *edgeFactor, *seed)
	case "er":
		edges := *m
		if edges == 0 {
			edges = int64(*n) * 10
		}
		g, err = repro.ErdosRenyiGraph(*n, edges, *seed)
	default:
		fmt.Fprintf(stderr, "gengraph: unknown -type %q\n", *typ)
		fs.Usage()
		return 2
	}
	if err != nil {
		fmt.Fprintf(stderr, "gengraph: %v\n", err)
		return 1
	}
	if *relabel {
		rg, err := repro.RelabelGraph(g)
		if err != nil {
			fmt.Fprintf(stderr, "gengraph: relabeling: %v\n", err)
			return 1
		}
		g.Close()
		g = rg
	}

	if err := save(*out, g); err != nil {
		fmt.Fprintf(stderr, "gengraph: writing %s: %v\n", *out, err)
		return 1
	}
	if *stats {
		s := repro.ComputeGraphStats(g)
		fmt.Fprintf(stdout, "wrote %s: %d vertices, %d edges, mean deg %.2f, max out %d, max in %d, gini %.3f\n",
			*out, s.NumVertices, s.NumEdges, s.MeanDeg, s.MaxOutDeg, s.MaxInDeg, s.GiniOut)
	}
	return 0
}

// sizeForBytes solves the gstore CSR encoding size for the vertex
// count: two offset arrays cost 16 bytes per vertex, the two adjacency
// arrays 8 bytes per edge (out + in copies), and relabeled files add a
// 4-byte permutation entry per vertex. Generators whose edge count
// isn't proportional to n (rmat's is fixed by -scale; er with an
// explicit -m) can't be sized this way and are an error.
func sizeForBytes(target int64, typ string, mean float64, m int64, relabel bool) (int, error) {
	var meanDeg float64
	switch typ {
	case "twitterlike":
		meanDeg = 30
	case "livejournallike":
		meanDeg = 14
	case "powerlaw":
		meanDeg = mean
	case "er":
		if m != 0 {
			return 0, fmt.Errorf("-target-bytes sizes -n from the mean degree; drop -m (er defaults to 10n edges)")
		}
		meanDeg = 10
	case "rmat":
		return 0, fmt.Errorf("-target-bytes cannot size rmat (vertex count is fixed by -scale)")
	default:
		return 0, fmt.Errorf("unknown -type %q", typ)
	}
	perVertex := 16 + 8*meanDeg
	if relabel {
		perVertex += 4
	}
	n := int(float64(target-256) / perVertex)
	if n < 2 {
		return 0, fmt.Errorf("-target-bytes %d too small for type %s (~%.0f bytes/vertex)", target, typ, perVertex)
	}
	return n, nil
}
