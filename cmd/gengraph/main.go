// Command gengraph generates synthetic directed graphs in the shapes
// the FrogWild reproduction uses (power-law "twitterlike" /
// "livejournallike" presets, custom power-law, R-MAT, Erdős–Rényi) and
// writes them as edge-list text or compact binary (gzipped when the
// output path ends in .gz).
//
// Usage:
//
//	gengraph -type twitterlike -n 100000 -seed 42 -out tw.bin.gz
//	gengraph -type powerlaw -n 50000 -mean 12 -degexp 2.1 -out g.txt
//	gengraph -type rmat -scale 18 -edgefactor 16 -out rmat.bin
//	gengraph -type er -n 10000 -m 100000 -out er.txt.gz
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro"
)

func main() {
	var (
		typ        = flag.String("type", "twitterlike", "graph type: twitterlike|livejournallike|powerlaw|rmat|er")
		n          = flag.Int("n", 100000, "vertex count (twitterlike/livejournallike/powerlaw/er)")
		m          = flag.Int64("m", 0, "edge count (er; default 10n)")
		mean       = flag.Float64("mean", 12, "mean out-degree (powerlaw)")
		degExp     = flag.Float64("degexp", 2.1, "out-degree Zipf exponent (powerlaw)")
		prefExp    = flag.Float64("prefexp", 1.0, "destination popularity exponent (powerlaw)")
		scale      = flag.Int("scale", 16, "log2 vertex count (rmat)")
		edgeFactor = flag.Int("edgefactor", 16, "edges per vertex (rmat)")
		seed       = flag.Uint64("seed", 1, "generator seed")
		out        = flag.String("out", "", "output path (required; .gz compresses, .bin selects binary)")
		stats      = flag.Bool("stats", true, "print graph statistics")
	)
	flag.Parse()
	if *out == "" {
		fmt.Fprintln(os.Stderr, "gengraph: -out is required")
		flag.Usage()
		os.Exit(2)
	}

	var (
		g   *repro.Graph
		err error
	)
	switch *typ {
	case "twitterlike":
		g, err = repro.TwitterLikeGraph(*n, *seed)
	case "livejournallike":
		g, err = repro.LiveJournalLikeGraph(*n, *seed)
	case "powerlaw":
		g, err = repro.PowerLawGraph(repro.PowerLawConfig{
			N: *n, MeanOutDeg: *mean, DegExponent: *degExp, PrefExponent: *prefExp, Seed: *seed,
		})
	case "rmat":
		g, err = repro.RMATGraph(*scale, *edgeFactor, *seed)
	case "er":
		edges := *m
		if edges == 0 {
			edges = int64(*n) * 10
		}
		g, err = repro.ErdosRenyiGraph(*n, edges, *seed)
	default:
		err = fmt.Errorf("unknown -type %q", *typ)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "gengraph: %v\n", err)
		os.Exit(1)
	}

	if strings.Contains(*out, ".bin") {
		err = repro.SaveGraphBinary(*out, g)
	} else {
		err = repro.SaveGraph(*out, g)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "gengraph: writing %s: %v\n", *out, err)
		os.Exit(1)
	}
	if *stats {
		s := repro.ComputeGraphStats(g)
		fmt.Printf("wrote %s: %d vertices, %d edges, mean deg %.2f, max out %d, max in %d, gini %.3f\n",
			*out, s.NumVertices, s.NumEdges, s.MeanDeg, s.MaxOutDeg, s.MaxInDeg, s.GiniOut)
	}
}
