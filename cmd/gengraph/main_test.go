package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro"
)

// TestUnknownFormatIsUsageError pins the satellite contract: a bogus
// -format exits 2 with a usage message instead of silently defaulting,
// and is rejected before any generation work (the -n here would
// otherwise take noticeable time).
func TestUnknownFormatIsUsageError(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"-format", "bogus", "-n", "2000000", "-out", filepath.Join(t.TempDir(), "g.txt")},
		&stdout, &stderr)
	if code != 2 {
		t.Fatalf("exit code = %d, want 2", code)
	}
	msg := stderr.String()
	if !strings.Contains(msg, `unknown -format "bogus"`) {
		t.Fatalf("stderr missing format diagnosis: %q", msg)
	}
	if !strings.Contains(msg, "Usage of gengraph") {
		t.Fatalf("stderr missing usage: %q", msg)
	}
}

func TestMissingOutIsUsageError(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-type", "er", "-n", "10"}, &stdout, &stderr); code != 2 {
		t.Fatalf("exit code = %d, want 2", code)
	}
}

// TestFormats generates a tiny graph in every explicit format and
// reloads each through the auto-detecting loader.
func TestFormats(t *testing.T) {
	dir := t.TempDir()
	for _, tc := range []struct {
		format, file string
	}{
		{"edgelist", "g.txt"},
		{"binary", "g.bin"},
		{"csr", "g.csr"},
		{"csr", "g.csr.gz"},
	} {
		t.Run(tc.format+"/"+tc.file, func(t *testing.T) {
			path := filepath.Join(dir, tc.file)
			var stdout, stderr bytes.Buffer
			code := run([]string{"-type", "er", "-n", "50", "-m", "300", "-seed", "7",
				"-format", tc.format, "-out", path}, &stdout, &stderr)
			if code != 0 {
				t.Fatalf("exit %d: %s", code, stderr.String())
			}
			g, err := repro.LoadGraph(path)
			if err != nil {
				t.Fatal(err)
			}
			defer g.Close()
			if g.NumVertices() != 50 {
				t.Fatalf("reloaded n = %d", g.NumVertices())
			}
			if !strings.Contains(stdout.String(), "50 vertices") {
				t.Fatalf("stats line missing: %q", stdout.String())
			}
		})
	}
}

// TestTargetBytes pins the -target-bytes contract: the written gstore
// CSR file lands within a factor of ~2 of the budget (the generator's
// realized mean degree wobbles around the preset), and un-sizable
// configurations are usage errors.
func TestTargetBytes(t *testing.T) {
	path := filepath.Join(t.TempDir(), "g.csr")
	var stdout, stderr bytes.Buffer
	code := run([]string{"-type", "powerlaw", "-mean", "8", "-target-bytes", "256KiB",
		"-format", "csr", "-relabel", "-out", path}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, stderr.String())
	}
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if fi.Size() < 128<<10 || fi.Size() > 512<<10 {
		t.Fatalf("file size %d not within 2x of the 256KiB target", fi.Size())
	}
	g, err := repro.LoadGraph(path)
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()

	for _, tc := range []struct {
		name, wantErr string
		args          []string
	}{
		{"rmat", "-target-bytes cannot size rmat", []string{"-type", "rmat", "-target-bytes", "1MiB", "-out", "x"}},
		{"er with -m", "drop -m", []string{"-type", "er", "-m", "100", "-target-bytes", "1MiB", "-out", "x"}},
		{"bad size", "-target-bytes", []string{"-target-bytes", "12wombats", "-out", "x"}},
	} {
		var stdout, stderr bytes.Buffer
		if code := run(tc.args, &stdout, &stderr); code != 2 {
			t.Errorf("%s: exit %d, want 2", tc.name, code)
		}
		if !strings.Contains(stderr.String(), tc.wantErr) {
			t.Errorf("%s: stderr %q missing %q", tc.name, stderr.String(), tc.wantErr)
		}
	}
}
