package main

import (
	"bytes"
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/loadgen"
	"repro/internal/obs"
)

// runCLI invokes the CLI body and returns (exit code, stdout, stderr).
func runCLI(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var stdout, stderr bytes.Buffer
	code := run(context.Background(), args, &stdout, &stderr)
	return code, stdout.String(), stderr.String()
}

// tinyRun are CLI args for a fast in-process run on a small graph.
func tinyRun(extra ...string) []string {
	return append([]string{
		"-gen", "twitterlike", "-n", "1000", "-machines", "2",
		"-queries", "300", "-warmup", "50", "-concurrency", "4", "-seed", "7",
	}, extra...)
}

// TestRunEndToEnd pins the acceptance criterion: a fixed-seed run
// against an in-process server completes and prints a JSON report with
// queries/s and p50/p95/p99 per endpoint, exit code 0.
func TestRunEndToEnd(t *testing.T) {
	code, stdout, stderr := runCLI(t, tinyRun()...)
	if code != 0 {
		t.Fatalf("exit %d, stderr:\n%s", code, stderr)
	}
	var doc loadgen.BenchDoc
	if err := json.Unmarshal([]byte(stdout), &doc); err != nil {
		t.Fatalf("stdout is not a JSON report: %v\n%s", err, stdout)
	}
	if doc.Env["target"] != "in-process" || doc.Env["seed"] != "7" {
		t.Errorf("env = %v", doc.Env)
	}
	names := map[string]bool{}
	var server *loadgen.BenchEntry
	for i := range doc.Benchmarks {
		b := &doc.Benchmarks[i]
		names[b.Name] = true
		if b.Name == "prload/server" {
			// Server-side counter entry, not a latency entry.
			server = b
			continue
		}
		for _, metric := range []string{"queries/s", "p50/ms", "p95/ms", "p99/ms"} {
			if _, ok := b.Metrics[metric]; !ok {
				t.Errorf("%s missing metric %s", b.Name, metric)
			}
		}
		if b.Metrics["errors"] != 0 {
			t.Errorf("%s had %v errors", b.Name, b.Metrics["errors"])
		}
	}
	for _, want := range []string{"prload/all", "prload/topk", "prload/rank"} {
		if !names[want] {
			t.Errorf("report missing %s entry (have %v)", want, names)
		}
	}
	if server == nil {
		t.Fatal("report missing prload/server entry")
	}
	if server.Metrics["requests"] <= 0 {
		t.Errorf("prload/server requests = %v, want > 0", server.Metrics["requests"])
	}
	if r := server.Metrics["cacheHitRate"]; r < 0 || r > 1 {
		t.Errorf("prload/server cacheHitRate = %v, want within [0,1]", r)
	}
	if !strings.Contains(stderr, "queries/s") {
		t.Errorf("no throughput summary on stderr:\n%s", stderr)
	}
}

// TestRunWritesOutFile checks -out writes the same report to disk.
func TestRunWritesOutFile(t *testing.T) {
	out := filepath.Join(t.TempDir(), "load.json")
	code, stdout, stderr := runCLI(t, tinyRun("-out", out)...)
	if code != 0 {
		t.Fatalf("exit %d, stderr:\n%s", code, stderr)
	}
	if stdout != "" {
		t.Errorf("-out still wrote to stdout:\n%s", stdout)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var doc loadgen.BenchDoc
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("out file not JSON: %v", err)
	}
	if len(doc.Benchmarks) == 0 {
		t.Error("out file has no benchmarks")
	}
}

// TestRunDeterministicSchedule runs the CLI twice with the same seed:
// the per-endpoint iteration counts must match exactly (latencies are
// wall-clock and may differ; the schedule must not).
func TestRunDeterministicSchedule(t *testing.T) {
	counts := func() map[string]int64 {
		code, stdout, stderr := runCLI(t, tinyRun()...)
		if code != 0 {
			t.Fatalf("exit %d, stderr:\n%s", code, stderr)
		}
		var doc loadgen.BenchDoc
		if err := json.Unmarshal([]byte(stdout), &doc); err != nil {
			t.Fatal(err)
		}
		got := map[string]int64{}
		for _, b := range doc.Benchmarks {
			got[b.Name] = b.Iterations
		}
		return got
	}
	a, b := counts(), counts()
	for name, n := range a {
		if b[name] != n {
			t.Errorf("%s: %d vs %d queries across identical runs", name, n, b[name])
		}
	}
}

// TestRunSharded drives the merge router over real TCP loopback shard
// workers and checks the report carries the measured wire traffic
// entry alongside the usual latency entries, with zero query errors.
func TestRunSharded(t *testing.T) {
	code, stdout, stderr := runCLI(t, tinyRun("-shards", "3")...)
	if code != 0 {
		t.Fatalf("exit %d, stderr:\n%s", code, stderr)
	}
	var doc loadgen.BenchDoc
	if err := json.Unmarshal([]byte(stdout), &doc); err != nil {
		t.Fatalf("stdout is not a JSON report: %v\n%s", err, stdout)
	}
	if doc.Env["target"] != "sharded(3)" || doc.Env["shards"] != "3" {
		t.Errorf("env = %v", doc.Env)
	}
	var network *loadgen.BenchEntry
	for i := range doc.Benchmarks {
		b := &doc.Benchmarks[i]
		if b.Name == "prload/network" {
			network = b
		}
		if b.Metrics["errors"] != 0 {
			t.Errorf("%s had %v errors", b.Name, b.Metrics["errors"])
		}
	}
	if network == nil {
		t.Fatal("report missing prload/network entry")
	}
	if network.Metrics["bytesPerQuery"] <= 0 || network.Metrics["bytesSent"] <= 0 || network.Metrics["bytesRecv"] <= 0 {
		t.Errorf("wire traffic not measured: %v", network.Metrics)
	}
	if !strings.Contains(stderr, "bytes/query") {
		t.Errorf("no wire-traffic summary on stderr:\n%s", stderr)
	}
}

// TestRunMetricsOut checks -metrics-out writes the server's Prometheus
// exposition and that its counters agree with the embedded
// prload/server entry.
func TestRunMetricsOut(t *testing.T) {
	mout := filepath.Join(t.TempDir(), "metrics.txt")
	code, stdout, stderr := runCLI(t, tinyRun("-metrics-out", mout)...)
	if code != 0 {
		t.Fatalf("exit %d, stderr:\n%s", code, stderr)
	}
	data, err := os.ReadFile(mout)
	if err != nil {
		t.Fatal(err)
	}
	series, err := obs.ParseText(data)
	if err != nil {
		t.Fatalf("-metrics-out is not a parseable exposition: %v", err)
	}
	var doc loadgen.BenchDoc
	if err := json.Unmarshal([]byte(stdout), &doc); err != nil {
		t.Fatal(err)
	}
	var server *loadgen.BenchEntry
	for i := range doc.Benchmarks {
		if doc.Benchmarks[i].Name == "prload/server" {
			server = &doc.Benchmarks[i]
		}
	}
	if server == nil {
		t.Fatal("report missing prload/server entry")
	}
	if got, want := obs.FamilySum(series, "serve_requests_total"), server.Metrics["requests"]; got != want {
		t.Errorf("serve_requests_total = %v in -metrics-out, %v in report", got, want)
	}
	// A live target needs -metrics-url to have anything to write;
	// caught as a usage error before any query is issued.
	if code, _, _ := runCLI(t, "-url", "http://127.0.0.1:1", "-queries", "10",
		"-vertices", "100", "-metrics-out", mout); code != 2 {
		t.Errorf("-metrics-out with -url but no -metrics-url: exit %d, want 2", code)
	}
}

func TestRunUsageErrors(t *testing.T) {
	if code, _, _ := runCLI(t, "-bogus"); code != 2 {
		t.Errorf("bad flag exit %d, want 2", code)
	}
	if code, _, _ := runCLI(t, tinyRun("-mix", "frobnicate=1")...); code != 2 {
		t.Errorf("bad mix exit %d, want 2", code)
	}
	if code, _, stderr := runCLI(t, tinyRun("-gen", "nosuch")...); code != 1 {
		t.Errorf("bad generator exit %d, want 1 (%s)", code, stderr)
	}
	if code, _, _ := runCLI(t, tinyRun("-open")...); code != 2 {
		t.Errorf("open loop without rate exit %d, want 2 (usage error)", code)
	}
	// -url can't infer the graph size; rank traffic without -vertices
	// is a usage error caught before any request is issued.
	if code, _, _ := runCLI(t, "-url", "http://127.0.0.1:1", "-queries", "10"); code != 2 {
		t.Errorf("-url rank traffic without -vertices exit %d, want 2", code)
	}
}

func TestParseMix(t *testing.T) {
	m, err := parseMix("topk=0.6, rank=0.3,stats=0.1")
	if err != nil {
		t.Fatal(err)
	}
	if m.TopK != 0.6 || m.Rank != 0.3 || m.Stats != 0.1 {
		t.Errorf("parsed %+v", m)
	}
	if m, err = parseMix("topk=1"); err != nil || m.TopK != 1 || m.Rank != 0 {
		t.Errorf("single-component mix: %+v, %v", m, err)
	}
	for _, bad := range []string{"topk", "topk=x", "frobnicate=1", ""} {
		if _, err := parseMix(bad); err == nil {
			t.Errorf("parseMix(%q) accepted", bad)
		}
	}
}

func TestBuildInProcessErrors(t *testing.T) {
	if _, _, err := buildInProcess("", "", "", "nosuchgen", 100, "frogwild", 2, 20, 1, 0, false); err == nil {
		t.Error("unknown generator accepted")
	}
	if _, _, err := buildInProcess("", "", "", "twitterlike", 100, "nosuchengine", 2, 20, 1, 0, false); err == nil {
		t.Error("unknown engine accepted")
	}
	if _, _, err := buildInProcess("/no/such/file", "", "", "", 100, "frogwild", 2, 20, 1, 0, false); err == nil {
		t.Error("missing graph file accepted")
	}
}

func TestBuildInProcessTiny(t *testing.T) {
	h, n, err := buildInProcess("", "", "", "twitterlike", 300, "glpr", 2, 20, 1, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	if h == nil || n != 300 {
		t.Fatalf("handler %v, n = %d", h, n)
	}
}

// TestRunGraphCache pins the -graph-cache protocol end to end: the
// first run builds the graph and writes the gstore cache, the second
// mmaps it (same report shape, no rebuild), and a corrupt cache is a
// hard failure.
func TestRunGraphCache(t *testing.T) {
	dir := t.TempDir()
	cache := filepath.Join(dir, "g.csr")
	args := tinyRun("-graph-cache", cache)

	if code, _, stderr := runCLI(t, args...); code != 0 {
		t.Fatalf("first run exit %d: %s", code, stderr)
	}
	if _, err := os.Stat(cache); err != nil {
		t.Fatalf("cache not written: %v", err)
	}
	if code, stdout, stderr := runCLI(t, args...); code != 0 {
		t.Fatalf("cached run exit %d: %s", code, stderr)
	} else if !strings.Contains(stdout, "queries/s") {
		t.Fatal("cached run produced no report")
	}

	// A cache hit that contradicts the generation flags is refused.
	mismatch := append([]string{}, args...)
	for i, a := range mismatch {
		if a == "-n" {
			mismatch[i+1] = "1234"
		}
	}
	if code, _, stderr := runCLI(t, mismatch...); code != 1 || !strings.Contains(stderr, "delete the cache") {
		t.Fatalf("stale cache exit %d (want 1), stderr: %s", code, stderr)
	}

	raw, err := os.ReadFile(cache)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0xff
	if err := os.WriteFile(cache, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if code, _, _ := runCLI(t, args...); code != 1 {
		t.Fatalf("corrupt cache exit %d, want 1", code)
	}
}

// TestRunSnapshotDir: the first run persists its snapshot, the second
// warm-starts from it (still a clean exit and a full report).
func TestRunSnapshotDir(t *testing.T) {
	dir := t.TempDir()
	args := tinyRun("-snapshot-dir", dir)
	if code, _, stderr := runCLI(t, args...); code != 0 {
		t.Fatalf("first run exit %d: %s", code, stderr)
	}
	if _, err := os.Stat(filepath.Join(dir, "snapshot.fws")); err != nil {
		t.Fatalf("snapshot not persisted: %v", err)
	}
	if code, stdout, stderr := runCLI(t, args...); code != 0 {
		t.Fatalf("warm run exit %d: %s", code, stderr)
	} else if !strings.Contains(stdout, "queries/s") {
		t.Fatal("warm run produced no report")
	}
}
