// Command prload drives the top-k PageRank query service with a
// deterministic, Zipf-skewed workload and emits a JSON latency report
// in the benchreport schema, so load-test results slot into the same
// BENCH_* artifact trajectory the benchmarks feed and `benchreport
// compare` can gate regressions against a committed baseline.
//
// Three targets:
//
//   - In-process (default): builds a graph and a snapshot-serving
//     handler in this process and drives it directly — no sockets, so
//     the measurement isolates the serving path. This is what the CI
//     perf gate runs.
//   - Sharded (-shards N): runs N shard RPC workers on TCP loopback
//     listeners over one shared snapshot, fronted by the exact top-k
//     merge router, and drives the router. The shard hops cross real
//     sockets, so the report gains a prload/network entry with the
//     measured wire bytes per query.
//   - Live (-url): drives a running prserve over real HTTP, measuring
//     full round-trip latency.
//
// Usage:
//
//	prload -gen twitterlike -n 50000 -queries 4000 -warmup 500 -out LOAD.json
//	prload -gen twitterlike -n 50000 -shards 4 -queries 4000
//	prload -url http://localhost:8080 -queries 10000 -concurrency 16
//	prload -gen twitterlike -n 50000 -open -rate 2000 -queries 8000
//	prload -gen twitterlike -n 20000 -mix topk=1 -ramp 4
//
// The report lists, per endpoint and in aggregate: queries/s, latency
// percentiles (p50/p90/p95/p99/max, milliseconds) and error counts.
// Same -seed and flags reproduce the exact same query schedule. Exit
// codes: 0 on a clean run, 1 when the run fails or any query errored,
// 2 on usage errors.
//
// Server-side counters ride along: after the run, prload reads the
// target's Prometheus registry (in-process and sharded targets
// directly; live targets via -metrics-url http://host:port/metrics)
// and embeds cache hit rate, coalesced builds, epoch fallbacks and
// degraded serves as a prload/server entry in the report, so the
// benchfmt trajectory captures server behavior, not just client-side
// latency. -metrics-out FILE additionally writes the raw exposition.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro"
	"repro/internal/loadgen"
	"repro/internal/obs"
	"repro/internal/router"
	"repro/internal/serve"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	os.Exit(run(ctx, os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable CLI body; see the package comment for the exit
// code contract.
func run(ctx context.Context, args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("prload", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		url      = fs.String("url", "", "drive a live server at this base URL instead of in-process")
		path     = fs.String("graph", "", "in-process: graph file (gstore CSR, binary, or edge list; auto-detected)")
		cache    = fs.String("graph-cache", "", "in-process: gstore CSR cache file — mmap it if present, else build from -graph/-gen and save it")
		graphMem = fs.String("graph-mem", "", "in-process: page adjacency from the gstore file under this byte budget (e.g. 512MiB); needs -graph-cache or a .csr -graph")
		relabel  = fs.Bool("graph-relabel", false, "in-process: degree-order vertex rows when building the graph cache (external ids unchanged)")
		snapDir  = fs.String("snapshot-dir", "", "in-process: warm-start the served snapshot from this directory (and persist the built one there), like prserve")
		genType  = fs.String("gen", "twitterlike", "in-process: generator, twitterlike|livejournallike")
		n        = fs.Int("n", 50000, "in-process: vertex count when generating")
		engine   = fs.String("engine", "frogwild", "in-process: snapshot engine, frogwild|glpr|exact")
		machines = fs.Int("machines", 16, "in-process: simulated cluster size")
		nshards  = fs.Int("shards", 0, "sharded mode: run N shard RPC workers on TCP loopback and drive the merge router (0 = single-node in-process)")
		seed     = fs.Uint64("seed", 1, "workload (and in-process graph/snapshot) seed")
		queries  = fs.Int("queries", 4000, "measured query count")
		warmup   = fs.Int("warmup", 500, "warmup queries excluded from stats")
		conc     = fs.Int("concurrency", 8, "closed-loop workers / open-loop stat shards")
		ramp     = fs.Int("ramp", 1, "closed-loop ramp stages (concurrency rises linearly across them)")
		open     = fs.Bool("open", false, "open loop: fixed arrival schedule instead of back-to-back workers")
		rate     = fs.Float64("rate", 0, "open-loop arrival rate, queries/s (required with -open)")
		mix      = fs.String("mix", "", "query mix weights, e.g. topk=0.6,rank=0.3,stats=0.1 (default that; add ppr=W for personalized-PageRank traffic)")
		zipfS    = fs.Float64("zipf-s", 1.1, "key-popularity Zipf exponent for k and vertex draws")
		maxK     = fs.Int("maxk", 100, "topk k parameter upper bound")
		vertices = fs.Int("vertices", 0, "rank-query vertex id space (default: the graph's size; required with -url when rank traffic is in the mix)")
		out      = fs.String("out", "-", "report path ('-' = stdout)")
		timeout  = fs.Duration("timeout", 0, "abort the run after this long (0 = no limit)")
		metURL   = fs.String("metrics-url", "", "with -url: scrape this /metrics endpoint after the run for the prload/server entry")
		metOut   = fs.String("metrics-out", "", "write the server's Prometheus exposition here after the run")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	var memBytes int64
	if *graphMem != "" {
		var err error
		if memBytes, err = repro.ParseByteSize(*graphMem); err != nil {
			fmt.Fprintf(stderr, "prload: -graph-mem: %v\n", err)
			fs.Usage()
			return 2
		}
	}

	cfg := loadgen.Config{
		Seed:        *seed,
		Queries:     *queries,
		Warmup:      *warmup,
		Concurrency: *conc,
		RampStages:  *ramp,
		OpenLoop:    *open,
		Rate:        *rate,
		ZipfS:       *zipfS,
		MaxK:        *maxK,
		Vertices:    *vertices,
	}
	if *mix != "" {
		m, err := parseMix(*mix)
		if err != nil {
			fmt.Fprintf(stderr, "prload: %v\n", err)
			fs.Usage()
			return 2
		}
		cfg.Mix = m
	}

	// Workload-config mistakes (open loop without -rate, rank traffic
	// against -url without -vertices, bad mix weights) are usage
	// errors, caught before the potentially expensive graph and
	// snapshot build. In-process runs fill Vertices from the graph, so
	// a placeholder stands in for that one field here.
	pre := cfg
	if *url == "" && pre.Vertices == 0 {
		pre.Vertices = 1
	}
	if err := pre.Validate(); err != nil {
		fmt.Fprintf(stderr, "prload: %v\n", err)
		fs.Usage()
		return 2
	}
	if *metOut != "" && *url != "" && *metURL == "" {
		fmt.Fprintf(stderr, "prload: -metrics-out with -url needs -metrics-url to scrape\n")
		fs.Usage()
		return 2
	}

	var target loadgen.Target
	var rt *router.Router
	var srv *serve.Server
	env := map[string]string{"seed": strconv.FormatUint(*seed, 10)}
	if *url != "" {
		target = loadgen.HTTPTarget{BaseURL: *url, Client: &http.Client{}}
		env["target"] = *url
	} else if *nshards > 0 {
		shardCtx, stopShards := context.WithCancel(ctx)
		defer stopShards()
		var vcount int
		var err error
		rt, vcount, err = buildSharded(shardCtx, *path, *cache, *genType, *n, *engine, *machines, *maxK, *seed, *nshards, memBytes, *relabel)
		if err != nil {
			fmt.Fprintf(stderr, "prload: %v\n", err)
			return 1
		}
		if cfg.Vertices == 0 {
			cfg.Vertices = vcount
		}
		target = loadgen.HandlerTarget{Handler: rt}
		env["target"] = fmt.Sprintf("sharded(%d)", *nshards)
		env["shards"] = strconv.Itoa(*nshards)
		env["engine"] = *engine
		env["graph"] = fmt.Sprintf("%s n=%d", *genType, vcount)
	} else {
		var vcount int
		var err error
		srv, vcount, err = buildInProcess(*path, *cache, *snapDir, *genType, *n, *engine, *machines, *maxK, *seed, memBytes, *relabel)
		if err != nil {
			fmt.Fprintf(stderr, "prload: %v\n", err)
			return 1
		}
		if cfg.Vertices == 0 {
			cfg.Vertices = vcount
		}
		target = loadgen.HandlerTarget{Handler: srv}
		env["target"] = "in-process"
		env["engine"] = *engine
		env["graph"] = fmt.Sprintf("%s n=%d", *genType, vcount)
	}

	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	fmt.Fprintf(stderr, "prload: %d warmup + %d measured queries against %s\n",
		cfg.Warmup, cfg.Queries, env["target"])
	start := time.Now()
	rep, err := loadgen.Run(ctx, cfg, target)
	if err != nil {
		fmt.Fprintf(stderr, "prload: %v\n", err)
		return 1
	}
	total := rep.Total()
	fmt.Fprintf(stderr, "prload: %d queries in %.2fs (%.0f queries/s, %d errors, p99 %v)\n",
		total.Count, time.Since(start).Seconds(), rep.QueriesPerSecond(),
		total.Errors, total.Hist.QuantileDuration(0.99))

	doc := rep.BenchDoc("prload", env)
	if rt != nil {
		// Measured wire traffic across the shard connections. The metric
		// names carry no "/s" suffix, so `benchreport compare` reports
		// them without gating on them.
		ns := rt.NetworkStats()
		doc.Benchmarks = append(doc.Benchmarks, loadgen.BenchEntry{
			Name:       "prload/network",
			Iterations: int64(ns.Queries),
			Metrics: map[string]float64{
				"bytesPerQuery": ns.BytesPerQuery,
				"bytesSent":     float64(ns.BytesSent),
				"bytesRecv":     float64(ns.BytesRecv),
			},
		})
		fmt.Fprintf(stderr, "prload: sharded wire traffic: %.0f bytes/query over %d queries (%d degraded, %d epoch fallbacks, %d retries)\n",
			ns.BytesPerQuery, ns.Queries, rt.Degraded(), rt.EpochFallbacks(), rt.Retries())
	}
	exposition, err := gatherMetrics(srv, rt, *metURL)
	if err != nil {
		fmt.Fprintf(stderr, "prload: metrics: %v\n", err)
		return 1
	}
	if exposition != nil {
		entry, err := serverEntry(exposition)
		if err != nil {
			fmt.Fprintf(stderr, "prload: metrics: %v\n", err)
			return 1
		}
		doc.Benchmarks = append(doc.Benchmarks, entry)
		if *metOut != "" {
			if err := os.WriteFile(*metOut, exposition, 0o644); err != nil {
				fmt.Fprintf(stderr, "prload: %v\n", err)
				return 1
			}
		}
	} else if *metOut != "" {
		fmt.Fprintf(stderr, "prload: -metrics-out needs an in-process target or -metrics-url\n")
		return 2
	}
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fmt.Fprintf(stderr, "prload: %v\n", err)
		return 1
	}
	data = append(data, '\n')
	if *out == "-" {
		stdout.Write(data)
	} else if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintf(stderr, "prload: %v\n", err)
		return 1
	}
	if total.Errors > 0 {
		fmt.Fprintf(stderr, "prload: %d queries failed\n", total.Errors)
		return 1
	}
	return 0
}

// gatherMetrics returns the target's Prometheus exposition after the
// run: rendered straight from the in-process registry (single-node or
// router target), fetched over HTTP when -metrics-url names a live
// endpoint, nil when the target exposes neither.
func gatherMetrics(srv *serve.Server, rt *router.Router, metricsURL string) ([]byte, error) {
	if metricsURL != "" {
		resp, err := http.Get(metricsURL)
		if err != nil {
			return nil, err
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return nil, fmt.Errorf("GET %s: status %d", metricsURL, resp.StatusCode)
		}
		return io.ReadAll(resp.Body)
	}
	var reg *obs.Registry
	switch {
	case rt != nil:
		reg = rt.Metrics()
	case srv != nil:
		reg = srv.Metrics()
	default:
		return nil, nil
	}
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// serverEntry condenses the exposition into the prload/server report
// entry. Absent families read as 0 (a router exposition has no serve_*
// families and vice versa), so one entry shape covers both targets.
// The metric names carry no "/s" suffix: `benchreport compare` reports
// them without gating on them.
func serverEntry(exposition []byte) (loadgen.BenchEntry, error) {
	series, err := obs.ParseText(exposition)
	if err != nil {
		return loadgen.BenchEntry{}, err
	}
	requests := obs.FamilySum(series, "serve_requests_total") +
		obs.FamilySum(series, "router_requests_total")
	topkHits := obs.FamilySum(series, "serve_topk_cache_hits_total")
	topkReqs := series[`serve_request_seconds_count{endpoint="topk"}`]
	hitRate := 0.0
	if topkReqs > 0 {
		hitRate = topkHits / topkReqs
	}
	pprHits := obs.FamilySum(series, "ppr_cache_hits_total")
	pprReqs := obs.FamilySum(series, "ppr_requests_total")
	pprHitRate := 0.0
	if pprReqs > 0 {
		pprHitRate = pprHits / pprReqs
	}
	pageHits := obs.FamilySum(series, "graph_page_cache_hits_total")
	pageMisses := obs.FamilySum(series, "graph_page_cache_misses_total")
	pageHitRate := 0.0
	if pageHits+pageMisses > 0 {
		pageHitRate = pageHits / (pageHits + pageMisses)
	}
	walkSteps := obs.FamilySum(series, "ppr_walk_steps_total")
	walkLocal := obs.FamilySum(series, "ppr_walk_page_local_steps_total")
	walkLocality := 0.0
	if walkSteps > 0 {
		walkLocality = walkLocal / walkSteps
	}
	return loadgen.BenchEntry{
		Name:       "prload/server",
		Iterations: int64(requests),
		Metrics: map[string]float64{
			"requests":        requests,
			"topkCacheHits":   topkHits,
			"cacheHitRate":    hitRate,
			"coalesced":       obs.FamilySum(series, "serve_coalesced_total"),
			"epochFallbacks":  obs.FamilySum(series, "router_epoch_fallbacks_total"),
			"degradedServes":  obs.FamilySum(series, "router_degraded_total"),
			"rpcRetries":      obs.FamilySum(series, "router_shard_rpc_retries_total"),
			"pprQueries":      pprReqs,
			"pprCacheHits":    pprHits,
			"pprCacheHitRate": pprHitRate,
			"pprWalks":        obs.FamilySum(series, "ppr_walks_total"),
			"pprTruncated":    obs.FamilySum(series, "ppr_truncated_total"),
			"pprUnsupported":  obs.FamilySum(series, "router_ppr_unsupported_total"),
			// Page-cache behavior under a -graph-mem budget; all 0 for
			// fully resident graphs.
			"pageCacheHits":      pageHits,
			"pageCacheMisses":    pageMisses,
			"pageCacheHitRate":   pageHitRate,
			"pageCacheEvictions": obs.FamilySum(series, "graph_page_cache_evictions_total"),
			"walkSteps":          walkSteps,
			"walkPageLocality":   walkLocality,
		},
	}, nil
}

// buildSharded assembles the in-process sharded target: one graph and
// one deterministic snapshot shared by N shard RPC workers, each
// serving its HDRF partition on a TCP loopback listener, fronted by
// the merge router. The sockets are real, so the router's byte meters
// measure actual wire traffic per query. The workers live until ctx is
// cancelled.
func buildSharded(ctx context.Context, path, cache, genType string, n int, engine string, machines, maxK int, seed uint64, shards int, memBytes int64, relabel bool) (*router.Router, int, error) {
	eng, err := serve.ParseEngine(engine)
	if err != nil {
		return nil, 0, err
	}
	g, err := openGraph(path, cache, genType, n, seed, memBytes, relabel)
	if err != nil {
		return nil, 0, err
	}
	snap, err := serve.Build(g, serve.BuildConfig{
		Engine: eng, Machines: machines, Seed: seed, MaxK: maxK,
	})
	if err != nil {
		return nil, 0, err
	}
	store := serve.NewStore()
	store.Publish(snap)

	clients := make([]*router.ShardClient, shards)
	for i := 0; i < shards; i++ {
		owned, err := router.OwnedVertices(g, shards, i, seed)
		if err != nil {
			return nil, 0, err
		}
		srv := router.NewShardServer(i, shards, owned, store)
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, 0, err
		}
		go srv.Serve(ctx, ln) //nolint:errcheck // lives until ctx cancel
		addr := ln.Addr().String()
		clients[i] = router.NewShardClient(i, addr, router.DialTCP(addr), 5*time.Second)
	}
	return router.New(clients, router.Options{Timeout: 5 * time.Second}), g.NumVertices(), nil
}

// buildInProcess assembles the in-process serving handler: load or
// generate the graph (through the mmap-able gstore cache when
// -graph-cache is set), compute or warm-start the snapshot (through
// -snapshot-dir), wrap it in the query API.
func buildInProcess(path, cache, snapDir, genType string, n int, engine string, machines, maxK int, seed uint64, memBytes int64, relabel bool) (*serve.Server, int, error) {
	eng, err := serve.ParseEngine(engine)
	if err != nil {
		return nil, 0, err
	}
	g, err := openGraph(path, cache, genType, n, seed, memBytes, relabel)
	if err != nil {
		return nil, 0, err
	}
	srv, _, err := serve.NewService(g, serve.ServiceConfig{
		Build: serve.BuildConfig{
			Engine:   eng,
			Machines: machines,
			Seed:     seed,
			MaxK:     maxK,
		},
		SnapshotDir: snapDir,
		// The workload draws ppr k on the same [1, maxK] range as topk
		// k, so the endpoint's k bound must track the flag or a raised
		// -maxk would turn ppr traffic into 400s.
		PPR: serve.PPROptions{MaxK: maxK},
	})
	if err != nil {
		return nil, 0, err
	}
	return srv, g.NumVertices(), nil
}

// openGraph is the graph-acquisition step both in-process targets
// share: the -graph-cache protocol (with optional degree-ordered
// relabeling at cache-build time), the paged open when a -graph-mem
// budget is set, and the direct paged load when -graph itself is the
// gstore file to page from.
func openGraph(path, cache, genType string, n int, seed uint64, memBytes int64, relabel bool) (*repro.Graph, error) {
	build := func() (*repro.Graph, error) {
		switch {
		case path != "":
			return repro.LoadGraph(path)
		case genType == "twitterlike":
			return repro.TwitterLikeGraph(n, seed)
		case genType == "livejournallike":
			return repro.LiveJournalLikeGraph(n, seed)
		}
		return nil, fmt.Errorf("unknown -gen %q (want twitterlike|livejournallike)", genType)
	}
	if memBytes > 0 && cache == "" && path != "" {
		return repro.LoadGraphPaged(path, memBytes)
	}
	genN := 0
	if path == "" {
		genN = n
	}
	return repro.CachedGraphCheckedWith(cache,
		repro.GraphCacheOptions{Mem: memBytes, Relabel: relabel}, genN, build)
}

// parseMix parses "topk=0.45,rank=0.25,ppr=0.2,stats=0.1" (weights are
// relative; omitted endpoints get weight 0).
func parseMix(s string) (loadgen.Mix, error) {
	var m loadgen.Mix
	for _, part := range strings.Split(s, ",") {
		key, val, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok {
			return m, fmt.Errorf("bad mix component %q (want name=weight)", part)
		}
		w, err := strconv.ParseFloat(val, 64)
		if err != nil {
			return m, fmt.Errorf("bad mix weight in %q: %v", part, err)
		}
		switch key {
		case "topk":
			m.TopK = w
		case "rank":
			m.Rank = w
		case "ppr":
			m.PPR = w
		case "stats":
			m.Stats = w
		default:
			return m, fmt.Errorf("unknown mix endpoint %q (want topk|rank|ppr|stats)", key)
		}
	}
	return m, nil
}
