package repro_test

import (
	"context"
	"math"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"repro"
)

func TestEndToEndQuickstart(t *testing.T) {
	g, err := repro.TwitterLikeGraph(3000, 42)
	if err != nil {
		t.Fatal(err)
	}
	exact, err := repro.ExactPageRank(g, repro.PageRankOptions{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := repro.RunFrogWild(g, repro.FrogWildConfig{
		Walkers:    g.NumVertices() / 3,
		Iterations: 4,
		PS:         0.7,
		Machines:   16,
		Seed:       42,
	})
	if err != nil {
		t.Fatal(err)
	}
	acc := repro.NormalizedCapturedMass(exact.Rank, res.Estimate, 50)
	if acc < 0.8 {
		t.Errorf("quickstart accuracy %.3f too low", acc)
	}
	top := repro.TopK(res.Estimate, 10)
	if len(top) != 10 {
		t.Fatalf("TopK returned %d entries", len(top))
	}
	for i := 1; i < len(top); i++ {
		if top[i].Score > top[i-1].Score {
			t.Fatal("TopK not sorted")
		}
	}
}

func TestBaselinesRunThroughFacade(t *testing.T) {
	g, err := repro.LiveJournalLikeGraph(2000, 7)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := repro.RunGraphLabPR(g, repro.GraphLabPRConfig{Machines: 4, Iterations: 2, Seed: 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := repro.RunSparsifiedPR(g, repro.SparsifyConfig{Keep: 0.7, Iterations: 2, Machines: 4, Seed: 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := repro.RunMonteCarloPR(g, repro.MonteCarloConfig{Seed: 1}); err != nil {
		t.Fatal(err)
	}
	counts, err := repro.SerialFrogWalk(g, 1000, 4, repro.DefaultTeleport, 1)
	if err != nil {
		t.Fatal(err)
	}
	var total int64
	for _, c := range counts {
		total += c
	}
	if total != 1000 {
		t.Errorf("serial walk total = %d", total)
	}
}

func TestGraphRoundTripThroughFacade(t *testing.T) {
	g, err := repro.ErdosRenyiGraph(500, 2500, 3)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	txt := filepath.Join(dir, "g.txt")
	if err := repro.SaveGraph(txt, g); err != nil {
		t.Fatal(err)
	}
	g2, err := repro.LoadGraph(txt)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumEdges() != g.NumEdges() {
		t.Error("text round trip changed edge count")
	}
	bin := filepath.Join(dir, "g.bin.gz")
	if err := repro.SaveGraphBinary(bin, g); err != nil {
		t.Fatal(err)
	}
	g3, err := repro.LoadGraph(bin)
	if err != nil {
		t.Fatal(err)
	}
	if g3.NumEdges() != g.NumEdges() {
		t.Error("binary round trip changed edge count")
	}
}

func TestServingThroughFacade(t *testing.T) {
	g, err := repro.TwitterLikeGraph(2000, 9)
	if err != nil {
		t.Fatal(err)
	}
	snap, err := repro.NewSnapshot(g, repro.SnapshotConfig{
		Engine:   repro.ServeEngineFrogWild,
		Machines: 4,
		Seed:     9,
	})
	if err != nil {
		t.Fatal(err)
	}
	// The acceptance contract: a snapshot's answer is bit-identical to
	// TopK over its own scores.
	for _, k := range []int{1, 20, 150} {
		if !reflect.DeepEqual(snap.TopK(k), repro.TopK(snap.Ranks, k)) {
			t.Fatalf("snapshot TopK(%d) differs from repro.TopK", k)
		}
	}
	if snap.Engine != repro.ServeEngineFrogWild || snap.Stats.NumVertices != g.NumVertices() {
		t.Errorf("snapshot provenance: %+v", snap.Engine)
	}

	// Serve: starts, builds, answers, and shuts down cleanly on cancel.
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		done <- repro.Serve(ctx, "127.0.0.1:0", g, repro.ServeConfig{
			Build: repro.SnapshotConfig{Engine: repro.ServeEngineFrogWild, Machines: 4, Seed: 9},
		})
	}()
	time.Sleep(100 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Serve should shut down cleanly, got %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Serve did not shut down")
	}
}

func TestLayoutSharingThroughFacade(t *testing.T) {
	g, err := repro.RMATGraph(10, 6, 5)
	if err != nil {
		t.Fatal(err)
	}
	p, err := repro.PartitionerByName("oblivious")
	if err != nil {
		t.Fatal(err)
	}
	lay, err := repro.NewLayout(g, 8, p, 1)
	if err != nil {
		t.Fatal(err)
	}
	a, err := repro.RunFrogWild(g, repro.FrogWildConfig{Walkers: 500, Iterations: 3, Layout: lay, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	b, err := repro.RunGraphLabPR(g, repro.GraphLabPRConfig{Layout: lay, Iterations: 2, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if a.Layout != lay || b.Layout != lay {
		t.Error("layout sharing broken")
	}
}

func TestTheoryThroughFacade(t *testing.T) {
	eps, err := repro.ErrorBound(repro.ErrorBoundParams{
		PT: 0.15, T: 5, K: 100, Delta: 0.1, N: 100000, PS: 0.7,
		Intersect: repro.IntersectionBound(1000000, 5, 1e-3, 0.15),
	})
	if err != nil {
		t.Fatal(err)
	}
	if eps <= 0 || math.IsNaN(eps) {
		t.Errorf("epsilon = %v", eps)
	}
}

func TestScatterModesExposed(t *testing.T) {
	g, err := repro.TwitterLikeGraph(1000, 9)
	if err != nil {
		t.Fatal(err)
	}
	for _, mode := range []repro.ScatterMode{repro.ScatterSplit, repro.ScatterBinomial} {
		if _, err := repro.RunFrogWild(g, repro.FrogWildConfig{
			Walkers: 2000, Iterations: 3, PS: 0.5, Machines: 4, Seed: 3, Mode: mode,
		}); err != nil {
			t.Fatalf("mode %v: %v", mode, err)
		}
	}
}

func TestGraphStatsThroughFacade(t *testing.T) {
	g, err := repro.TwitterLikeGraph(2000, 1)
	if err != nil {
		t.Fatal(err)
	}
	s := repro.ComputeGraphStats(g)
	if s.NumVertices != 2000 || s.Dangling != 0 {
		t.Errorf("stats: %+v", s)
	}
}

func TestPersonalizedFrogWildThroughFacade(t *testing.T) {
	g, err := repro.LiveJournalLikeGraph(1500, 11)
	if err != nil {
		t.Fatal(err)
	}
	sources := []repro.VertexID{3, 14}
	exact, err := repro.ExactPersonalizedPageRank(g, sources, 0)
	if err != nil {
		t.Fatal(err)
	}
	res, err := repro.RunPersonalizedFrogWild(g, repro.PPRConfig{
		Config:  repro.FrogWildConfig{Walkers: 20000, Iterations: 8, PS: 0.7, Machines: 8, Seed: 2},
		Sources: sources,
	})
	if err != nil {
		t.Fatal(err)
	}
	if acc := repro.NormalizedCapturedMass(exact, res.Estimate, 20); acc < 0.75 {
		t.Errorf("PPR facade accuracy %.3f", acc)
	}
}

func TestGossipThroughFacade(t *testing.T) {
	g, err := repro.TwitterLikeGraph(1000, 12)
	if err != nil {
		t.Fatal(err)
	}
	res, err := repro.RunGossip(g, repro.GossipConfig{Origin: 0, Rounds: 12, PS: 0.5, Machines: 6, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Informed < 2 {
		t.Errorf("rumor reached only %d vertices", res.Informed)
	}
}

func TestMetricsThroughFacade(t *testing.T) {
	a := []float64{0.5, 0.3, 0.2}
	b := []float64{0.2, 0.3, 0.5}
	if repro.L1Distance(a, b) != 0.6 {
		t.Error("L1 wrong")
	}
	if repro.ChiSquaredContrast(a, a) != 0 {
		t.Error("chi2 self should be 0")
	}
	if repro.KendallTauTopK(a, a, 3) != 1 {
		t.Error("tau self should be 1")
	}
	if repro.PrecisionAtK(a, a, 2) != 1 {
		t.Error("precision self should be 1")
	}
}

func TestErasureModesThroughFacade(t *testing.T) {
	g, err := repro.TwitterLikeGraph(800, 13)
	if err != nil {
		t.Fatal(err)
	}
	res, err := repro.RunFrogWild(g, repro.FrogWildConfig{
		Walkers: 5000, Iterations: 4, PS: 0.1, Machines: 16, Seed: 4,
		ErasureModel: repro.ErasureIndependent,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalFrogs+res.LostFrogs != 5000 {
		t.Error("erasure accounting broken through facade")
	}
}

func TestGraphAlgorithmsThroughFacade(t *testing.T) {
	g, err := repro.TwitterLikeGraph(500, 14)
	if err != nil {
		t.Fatal(err)
	}
	if _, num := g.SCC(); num < 1 {
		t.Error("SCC broken")
	}
	tr := g.Transpose()
	if tr.NumEdges() != g.NumEdges() {
		t.Error("Transpose broken")
	}
	mask := g.LargestSCCMask()
	sub, orig := g.InducedSubgraph(mask)
	if sub.NumVertices() == 0 || len(orig) != sub.NumVertices() {
		t.Error("InducedSubgraph broken")
	}
}

func TestVisitsEstimatorThroughFacade(t *testing.T) {
	g, err := repro.TwitterLikeGraph(800, 15)
	if err != nil {
		t.Fatal(err)
	}
	res, err := repro.RunFrogWild(g, repro.FrogWildConfig{
		Walkers: 500, Iterations: 4, PS: 1, Machines: 4, Seed: 1,
		Estimator: repro.EstimatorVisits,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalFrogs < 500 {
		t.Errorf("visit tally %d below frog count", res.TotalFrogs)
	}
}
