package repro_test

// Cross-algorithm integration tests: every estimator in the repository
// is pointed at the same graph and the results are checked against each
// other, pinning the consistency relations a user relies on:
//
//	exact serial PR  ≈  GL PR exact on the engine
//	              ≈  FrogWild with many walkers
//	              ≈  serial Monte Carlo
//	              ≈  analytic walk distribution at large t
//
// plus determinism of the entire pipeline under a fixed seed.

import (
	"math"
	"testing"

	"repro"
)

func TestAllEstimatorsAgreeOnTopK(t *testing.T) {
	g, err := repro.TwitterLikeGraph(4000, 31)
	if err != nil {
		t.Fatal(err)
	}
	exact, err := repro.ExactPageRank(g, repro.PageRankOptions{})
	if err != nil {
		t.Fatal(err)
	}
	const k = 50

	check := func(name string, est []float64, minMass float64) {
		t.Helper()
		if len(est) != g.NumVertices() {
			t.Fatalf("%s: wrong estimate length", name)
		}
		m := repro.NormalizedCapturedMass(exact.Rank, est, k)
		if m < minMass {
			t.Errorf("%s captured %.4f of top-%d mass, want ≥ %.2f", name, m, k, minMass)
		}
	}

	gl, err := repro.RunGraphLabPR(g, repro.GraphLabPRConfig{Machines: 12, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	check("GL PR exact", gl.Rank, 0.999)

	fw, err := repro.RunFrogWild(g, repro.FrogWildConfig{
		Walkers: 80000, Iterations: 8, PS: 1, Machines: 12, Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	check("FrogWild 80k walkers", fw.Estimate, 0.97)

	fwLow, err := repro.RunFrogWild(g, repro.FrogWildConfig{
		Walkers: 80000, Iterations: 8, PS: 0.4, Machines: 12, Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	check("FrogWild ps=0.4", fwLow.Estimate, 0.90)

	mc, err := repro.RunMonteCarloPR(g, repro.MonteCarloConfig{WalkersPerVertex: 10, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	check("serial Monte Carlo", mc.Estimate, 0.95)

	sp, err := repro.RunSparsifiedPR(g, repro.SparsifyConfig{Keep: 0.7, Iterations: 2, Machines: 12, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	check("sparsified 2-iter PR", sp.Rank, 0.85)
}

func TestWholePipelineDeterministic(t *testing.T) {
	run := func() (int64, []float64) {
		g, err := repro.LiveJournalLikeGraph(2000, 55)
		if err != nil {
			t.Fatal(err)
		}
		lay, err := repro.NewLayout(g, 10, nil, 55)
		if err != nil {
			t.Fatal(err)
		}
		fw, err := repro.RunFrogWild(g, repro.FrogWildConfig{
			Walkers: 5000, Iterations: 4, PS: 0.4, Layout: lay, Seed: 55,
		})
		if err != nil {
			t.Fatal(err)
		}
		return fw.Stats.Net.TotalBytes, fw.Estimate
	}
	bytesA, estA := run()
	bytesB, estB := run()
	if bytesA != bytesB {
		t.Errorf("network bytes diverged: %d vs %d", bytesA, bytesB)
	}
	for v := range estA {
		if estA[v] != estB[v] {
			t.Fatalf("estimate diverged at vertex %d", v)
		}
	}
}

func TestTheoremBoundCoversObservedError(t *testing.T) {
	// End-to-end Theorem 1 sanity: observed captured-mass deficit must
	// be below the ε bound computed from the run's own parameters.
	g, err := repro.TwitterLikeGraph(2000, 77)
	if err != nil {
		t.Fatal(err)
	}
	exact, err := repro.ExactPageRank(g, repro.PageRankOptions{})
	if err != nil {
		t.Fatal(err)
	}
	piMax := 0.0
	for _, p := range exact.Rank {
		piMax = math.Max(piMax, p)
	}
	const (
		k, iters, walkers = 20, 8, 50000
		ps                = 0.7
	)
	eps, err := repro.ErrorBound(repro.ErrorBoundParams{
		PT: 0.15, T: iters, K: k, Delta: 0.05, N: walkers, PS: ps,
		Intersect: repro.IntersectionBound(g.NumVertices(), iters, piMax, 0.15),
	})
	if err != nil {
		t.Fatal(err)
	}
	fw, err := repro.RunFrogWild(g, repro.FrogWildConfig{
		Walkers: walkers, Iterations: iters, PS: ps, Machines: 16, Seed: 77,
	})
	if err != nil {
		t.Fatal(err)
	}
	optimal := repro.CapturedMass(exact.Rank, exact.Rank, k)
	captured := repro.CapturedMass(exact.Rank, fw.Estimate, k)
	if captured < optimal-eps {
		t.Errorf("observed deficit %.4f exceeds Theorem 1 ε = %.4f", optimal-captured, eps)
	}
}

func TestRankingMetricsConsistent(t *testing.T) {
	// Relations between the metrics themselves on a real run: perfect
	// agreement bounds, and exact-identification ≤ precision-at-k.
	g, err := repro.TwitterLikeGraph(2500, 13)
	if err != nil {
		t.Fatal(err)
	}
	exact, err := repro.ExactPageRank(g, repro.PageRankOptions{})
	if err != nil {
		t.Fatal(err)
	}
	fw, err := repro.RunFrogWild(g, repro.FrogWildConfig{
		Walkers: 30000, Iterations: 5, PS: 0.7, Machines: 8, Seed: 13,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []int{10, 50, 200} {
		ident := repro.ExactIdentification(exact.Rank, fw.Estimate, k)
		prec := repro.PrecisionAtK(exact.Rank, fw.Estimate, k)
		if prec < ident-1e-12 {
			t.Errorf("k=%d: precision %.4f < identification %.4f", k, prec, ident)
		}
		mass := repro.NormalizedCapturedMass(exact.Rank, fw.Estimate, k)
		if mass < ident-1e-12 {
			// every correctly identified vertex contributes its full
			// mass, so captured mass ≥ identification · (min share),
			// and in particular normalized mass ≥ identification only
			// when the top-k masses are comparable — use the weaker
			// sanity bound: mass > 0 whenever identification > 0.
			if ident > 0 && mass == 0 {
				t.Errorf("k=%d: identification %.4f but zero mass", k, ident)
			}
		}
		tau := repro.KendallTauTopK(exact.Rank, fw.Estimate, k)
		if tau < -1-1e-12 || tau > 1+1e-12 {
			t.Errorf("k=%d: tau %v out of [-1,1]", k, tau)
		}
	}
}
