// Loadtest: build the top-k PageRank query service in-process and
// drive it with the deterministic load generator — Zipf-skewed
// topk/rank/stats traffic with a warmup phase — then print per-endpoint
// throughput and latency percentiles, in both closed-loop (workers
// issue back-to-back) and open-loop (fixed Poisson arrival schedule)
// disciplines. Same seed, same query sequence, every run; this is the
// measurement pipeline CI's perf gate runs via cmd/prload.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"repro"
)

func main() {
	const (
		vertices = 20000
		seed     = 42
	)
	g, err := repro.TwitterLikeGraph(vertices, seed)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("generated graph: %d vertices, %d edges\n", g.NumVertices(), g.NumEdges())

	start := time.Now()
	handler, err := repro.NewServerHandler(g, repro.SnapshotConfig{
		Engine:   repro.ServeEngineFrogWild,
		Machines: 16,
		Seed:     seed,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("snapshot built in %.2fs; driving the handler in-process\n\n", time.Since(start).Seconds())

	// Closed loop: 8 workers issue queries back-to-back, so offered
	// load adapts to the service rate and throughput is the headline.
	closed := repro.LoadConfig{
		Seed:        seed,
		Queries:     4000,
		Warmup:      500,
		Concurrency: 8,
		Vertices:    g.NumVertices(),
	}
	rep, err := repro.RunLoadTest(context.Background(), closed, handler)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("closed loop (8 workers, 4000 queries after 500 warmup):\n")
	printReport(rep)

	// Open loop: arrivals follow a fixed 20k queries/s Poisson
	// schedule regardless of completions, so queueing delay shows up
	// in the tail percentiles instead of throttling the offered load.
	open := closed
	open.OpenLoop = true
	open.Rate = 20000
	rep, err = repro.RunLoadTest(context.Background(), open, handler)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nopen loop (Poisson arrivals at 20000 queries/s):\n")
	printReport(rep)
}

// printReport renders per-endpoint and aggregate stats.
func printReport(rep *repro.LoadReport) {
	fmt.Printf("  %-8s %10s %10s %10s %10s %10s %8s\n",
		"endpoint", "queries", "p50", "p95", "p99", "max", "errors")
	row := func(name string, count, errs uint64, p50, p95, p99, max time.Duration) {
		fmt.Printf("  %-8s %10d %10v %10v %10v %10v %8d\n", name, count, p50, p95, p99, max, errs)
	}
	for _, ep := range []string{"topk", "rank", "stats"} {
		for name, st := range rep.PerEndpoint {
			if string(name) != ep {
				continue
			}
			row(ep, st.Count, st.Errors, st.Hist.QuantileDuration(0.50),
				st.Hist.QuantileDuration(0.95), st.Hist.QuantileDuration(0.99),
				time.Duration(st.Hist.Max()))
		}
	}
	total := rep.Total()
	row("all", total.Count, total.Errors, total.Hist.QuantileDuration(0.50),
		total.Hist.QuantileDuration(0.95), total.Hist.QuantileDuration(0.99),
		time.Duration(total.Hist.Max()))
	fmt.Printf("  throughput: %.0f queries/s over %.3fs wall\n",
		rep.QueriesPerSecond(), rep.Wall.Seconds())
}
