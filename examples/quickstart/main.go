// Quickstart: generate a Twitter-like graph, run FrogWild on a
// simulated 16-machine cluster, and compare the reported top-20 with
// exact PageRank — the minimal end-to-end use of the library.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	const (
		vertices = 20000
		seed     = 42
	)
	g, err := repro.TwitterLikeGraph(vertices, seed)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("generated graph: %d vertices, %d edges\n", g.NumVertices(), g.NumEdges())

	// FrogWild: N = n/6 frogs (the paper's walker-to-vertex ratio),
	// 4 iterations, 70% mirror synchronization.
	res, err := repro.RunFrogWild(g, repro.FrogWildConfig{
		Walkers:    vertices / 6,
		Iterations: 4,
		PS:         0.7,
		Machines:   16,
		Seed:       seed,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("frogwild: simulated %.3fs total, %d network bytes, replication factor %.2f\n",
		res.Stats.SimSeconds, res.Stats.Net.TotalBytes, res.Stats.ReplicationFactor)

	exact, err := repro.ExactPageRank(g, repro.PageRankOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("exact pagerank: %d power iterations\n\n", exact.Iterations)

	fmt.Printf("%-6s %-10s %-14s %-14s\n", "rank", "vertex", "frogwild", "exact")
	for i, e := range repro.TopK(res.Estimate, 20) {
		fmt.Printf("%-6d %-10d %-14.6e %-14.6e\n", i+1, e.Vertex, e.Score, exact.Rank[e.Vertex])
	}
	fmt.Printf("\nmass captured (k=20):       %.4f\n", repro.NormalizedCapturedMass(exact.Rank, res.Estimate, 20))
	fmt.Printf("exact identification (k=20): %.4f\n", repro.ExactIdentification(exact.Rank, res.Estimate, 20))
}
