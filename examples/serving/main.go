// Serving: start the top-k PageRank query service in-process on a
// generated graph, query it over HTTP like an external client would,
// and check the answer quality — the captured mass of the served top-k
// against exact PageRank. Demonstrates the snapshot/epoch model: every
// response says which published estimate it came from.
//
// This example assembles the service from internal/serve so it can hold
// the server handle (bind port 0, read counters, shut down in-process);
// external consumers would run cmd/prserve and speak plain HTTP.
package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net/http"
	"time"

	"repro"
	"repro/internal/serve"
)

func main() {
	const (
		vertices = 20000
		seed     = 42
		k        = 20
	)
	g, err := repro.TwitterLikeGraph(vertices, seed)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("generated graph: %d vertices, %d edges\n", g.NumVertices(), g.NumEdges())

	// Build the initial FrogWild snapshot and start serving it.
	start := time.Now()
	srv, refresher, err := serve.NewService(g, serve.ServiceConfig{
		Build: serve.BuildConfig{
			Engine:   serve.EngineFrogWild,
			Machines: 16,
			Seed:     seed,
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("initial snapshot built in %.2fs (refreshes so far: %d)\n",
		time.Since(start).Seconds(), refresher.Refreshes())

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ctx, "127.0.0.1:0") }()
	for srv.Addr() == "" {
		select {
		case err := <-done:
			log.Fatalf("serve: %v", err) // e.g. listen failure
		case <-time.After(time.Millisecond):
		}
	}
	base := "http://" + srv.Addr()
	fmt.Printf("serving on %s\n\n", base)

	// Query it like any HTTP client.
	var top struct {
		Epoch   uint64 `json:"epoch"`
		Engine  string `json:"engine"`
		K       int    `json:"k"`
		Entries []struct {
			Vertex uint32  `json:"vertex"`
			Score  float64 `json:"score"`
		} `json:"entries"`
	}
	mustGet(base+fmt.Sprintf("/v1/topk?k=%d", k), &top)
	fmt.Printf("GET /v1/topk?k=%d -> epoch %d, engine %s\n", k, top.Epoch, top.Engine)
	fmt.Printf("%-6s %-10s %s\n", "rank", "vertex", "served estimate")
	for i, e := range top.Entries {
		fmt.Printf("%-6d %-10d %.6e\n", i+1, e.Vertex, e.Score)
	}

	// How good is the served answer? Captured mass of the served top-k
	// set under exact PageRank, versus the best any k-set can do.
	exact, err := repro.ExactPageRank(g, repro.PageRankOptions{})
	if err != nil {
		log.Fatal(err)
	}
	var served, optimal float64
	for _, e := range top.Entries {
		served += exact.Rank[e.Vertex]
	}
	for _, e := range repro.TopK(exact.Rank, k) {
		optimal += e.Score
	}
	fmt.Printf("\ncaptured mass of served top-%d: %.4f (optimal %.4f, ratio %.4f)\n",
		k, served, optimal, served/optimal)

	// The server can make the same comparison on demand.
	var cmp struct {
		Epoch          uint64  `json:"epoch"`
		Against        string  `json:"against"`
		NormalizedMass float64 `json:"normalizedMass"`
	}
	mustGet(base+fmt.Sprintf("/v1/compare?engine=exact&k=%d", k), &cmp)
	fmt.Printf("GET /v1/compare?engine=exact -> epoch %d, normalized mass %.4f\n",
		cmp.Epoch, cmp.NormalizedMass)

	cancel()
	if err := <-done; err != nil {
		log.Fatal(err)
	}
	fmt.Printf("graceful shutdown after %d queries\n", srv.Queries())
}

// mustGet fetches url and decodes its JSON body into out.
func mustGet(url string, out any) {
	resp, err := http.Get(url)
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		log.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		log.Fatalf("GET %s: %d: %s", url, resp.StatusCode, body)
	}
	if err := json.Unmarshal(body, out); err != nil {
		log.Fatal(err)
	}
}
