// Influencers: the paper's first motivating application (Section 1):
// a telecom/OSN operator wants its top-k most influential customers
// from the activity (call) graph — quickly and repeatedly, because the
// graph changes constantly. The full ranking is irrelevant; only the
// heavy hitters matter, so FrogWild's speed/accuracy trade-off is the
// right tool.
//
// The example builds a synthetic activity graph, then sweeps the
// synchronization probability ps to show the paper's headline
// trade-off: network traffic falls almost linearly in ps while the
// top-50 captured mass degrades only mildly.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	// A call graph: power-law activity (a few call centers and
	// socialites, many quiet customers).
	const customers = 30000
	g, err := repro.PowerLawGraph(repro.PowerLawConfig{
		N:            customers,
		MeanOutDeg:   10,
		DegExponent:  2.2,
		PrefExponent: 1.0,
		Seed:         2024,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("activity graph: %d customers, %d call edges\n", g.NumVertices(), g.NumEdges())

	exact, err := repro.ExactPageRank(g, repro.PageRankOptions{})
	if err != nil {
		log.Fatal(err)
	}

	// One shared cluster layout (ingress is paid once; the operator
	// re-runs the ranking as the graph evolves).
	lay, err := repro.NewLayout(g, 20, nil, 2024)
	if err != nil {
		log.Fatal(err)
	}

	const k = 50
	fmt.Printf("\nsweeping mirror-synchronization probability ps (20 machines, %d walkers, 4 iterations):\n\n",
		customers/6)
	fmt.Printf("%-8s %-16s %-14s %-12s %-10s\n", "ps", "network bytes", "sim time (s)", "mass k=50", "ident k=50")
	var fullNet int64
	for _, ps := range []float64{1.0, 0.7, 0.4, 0.1} {
		res, err := repro.RunFrogWild(g, repro.FrogWildConfig{
			Walkers:    customers / 6,
			Iterations: 4,
			PS:         ps,
			Layout:     lay,
			Seed:       2024,
		})
		if err != nil {
			log.Fatal(err)
		}
		if ps == 1.0 {
			fullNet = res.Stats.Net.TotalBytes
		}
		fmt.Printf("%-8.1f %-16d %-14.4f %-12.4f %-10.4f\n",
			ps, res.Stats.Net.TotalBytes, res.Stats.SimSeconds,
			repro.NormalizedCapturedMass(exact.Rank, res.Estimate, k),
			repro.ExactIdentification(exact.Rank, res.Estimate, k))
	}

	// The baseline the operator would otherwise run.
	gl, err := repro.RunGraphLabPR(g, repro.GraphLabPRConfig{Layout: lay, Seed: 2024})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nGraphLab PR exact: %d iterations, %d network bytes (%.0fx FrogWild ps=1), %.4f sim s\n",
		gl.Stats.Supersteps, gl.Stats.Net.TotalBytes,
		float64(gl.Stats.Net.TotalBytes)/float64(fullNet), gl.Stats.SimSeconds)

	// Show the campaign list itself.
	res, err := repro.RunFrogWild(g, repro.FrogWildConfig{
		Walkers: customers / 6, Iterations: 4, PS: 0.7, Layout: lay, Seed: 2024,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ntop-10 influential customers (ps=0.7):\n")
	for i, e := range repro.TopK(res.Estimate, 10) {
		marker := " "
		if exactRankOf(exact.Rank, e.Vertex, 10) {
			marker = "*"
		}
		fmt.Printf("  %2d. customer %-8d score %.5f %s\n", i+1, e.Vertex, e.Score, marker)
	}
	fmt.Println("  (* = also in the exact top-10)")
}

func exactRankOf(rank []float64, v uint32, k int) bool {
	for _, e := range repro.TopK(rank, k) {
		if e.Vertex == v {
			return true
		}
	}
	return false
}
