// Webcrawl: rank pages of a synthetic web graph (R-MAT, the standard
// web-graph model) and compare every approach the paper evaluates on
// one table: FrogWild, GraphLab PR run exactly / for 1-2 iterations,
// and uniform sparsification — time, network and top-100 accuracy.
// This is the paper's Figures 3 and 5 condensed into one runnable
// program.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	// 2^15 = 32768 pages, ~16 links per page.
	g, err := repro.RMATGraph(15, 16, 99)
	if err != nil {
		log.Fatal(err)
	}
	stats := repro.ComputeGraphStats(g)
	fmt.Printf("web graph (R-MAT): %d pages, %d links, max in-degree %d\n\n",
		stats.NumVertices, stats.NumEdges, stats.MaxInDeg)

	exact, err := repro.ExactPageRank(g, repro.PageRankOptions{})
	if err != nil {
		log.Fatal(err)
	}

	const machines = 16
	lay, err := repro.NewLayout(g, machines, nil, 99)
	if err != nil {
		log.Fatal(err)
	}
	walkers := g.NumVertices() / 6

	type row struct {
		name     string
		simSec   float64
		netBytes int64
		acc      float64
	}
	var rows []row

	for _, spec := range []struct {
		name  string
		iters int
	}{{"GraphLab PR exact", 0}, {"GraphLab PR 2 iters", 2}, {"GraphLab PR 1 iter", 1}} {
		cfg := repro.GraphLabPRConfig{Layout: lay, Seed: 99}
		cfg.Iterations = spec.iters
		res, err := repro.RunGraphLabPR(g, cfg)
		if err != nil {
			log.Fatal(err)
		}
		rows = append(rows, row{spec.name, res.Stats.SimSeconds, res.Stats.Net.TotalBytes,
			repro.NormalizedCapturedMass(exact.Rank, res.Rank, 100)})
	}
	for _, ps := range []float64{1.0, 0.4} {
		res, err := repro.RunFrogWild(g, repro.FrogWildConfig{
			Walkers: walkers, Iterations: 4, PS: ps, Layout: lay, Seed: 99,
		})
		if err != nil {
			log.Fatal(err)
		}
		rows = append(rows, row{fmt.Sprintf("FrogWild ps=%.1f", ps),
			res.Stats.SimSeconds, res.Stats.Net.TotalBytes,
			repro.NormalizedCapturedMass(exact.Rank, res.Estimate, 100)})
	}
	for _, q := range []float64{0.7, 0.4} {
		res, err := repro.RunSparsifiedPR(g, repro.SparsifyConfig{
			Keep: q, Iterations: 2, Machines: machines, Seed: 99,
		})
		if err != nil {
			log.Fatal(err)
		}
		rows = append(rows, row{fmt.Sprintf("sparsify q=%.1f + 2 iters", q),
			res.Stats.SimSeconds, res.Stats.Net.TotalBytes,
			repro.NormalizedCapturedMass(exact.Rank, res.Rank, 100)})
	}
	mc, err := repro.RunMonteCarloPR(g, repro.MonteCarloConfig{Seed: 99})
	if err != nil {
		log.Fatal(err)
	}
	rows = append(rows, row{"serial MC (1 walk/vertex)", 0, 0,
		repro.NormalizedCapturedMass(exact.Rank, mc.Estimate, 100)})

	fmt.Printf("%-26s %-14s %-16s %s\n", "method", "sim time (s)", "network bytes", "mass captured k=100")
	for _, r := range rows {
		net := fmt.Sprintf("%d", r.netBytes)
		sim := fmt.Sprintf("%.4f", r.simSec)
		if r.netBytes == 0 {
			net, sim = "n/a (serial)", "n/a"
		}
		fmt.Printf("%-26s %-14s %-16s %.4f\n", r.name, sim, net, r.acc)
	}
	fmt.Printf("\n(walkers=%d, cluster=%d machines; FrogWild should dominate the\n", walkers, machines)
	fmt.Printf(" network column at comparable accuracy — the paper's headline result)\n")
}
