// Recommend: "accounts you may want to follow" via personalized
// PageRank. The paper's Section 2.4 discusses top-k personalized
// PageRank (Avrachenkov et al.) as the sibling problem of its global
// top-k task; the FrogWild machinery solves it by restarting frogs from
// the user's account instead of uniformly. This example builds a
// follower graph, picks a user, and compares personalized FrogWild's
// recommendations against exact PPR — and against the global ranking,
// to show personalization actually changes the answer.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	const users = 15000
	g, err := repro.TwitterLikeGraph(users, 77)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("follower graph: %d users, %d follow edges\n", g.NumVertices(), g.NumEdges())

	// The user we recommend for: someone ordinary (not a celebrity).
	user := repro.VertexID(4321)
	fmt.Printf("recommending for user %d (following %d accounts)\n\n", user, g.OutDegree(user))

	exactPPR, err := repro.ExactPersonalizedPageRank(g, []repro.VertexID{user}, 0)
	if err != nil {
		log.Fatal(err)
	}
	res, err := repro.RunPersonalizedFrogWild(g, repro.PPRConfig{
		Config: repro.FrogWildConfig{
			Walkers:    60000,
			Iterations: 10,
			PS:         0.7,
			Machines:   16,
			Seed:       77,
		},
		Sources: []repro.VertexID{user},
	})
	if err != nil {
		log.Fatal(err)
	}
	globalPR, err := repro.ExactPageRank(g, repro.PageRankOptions{})
	if err != nil {
		log.Fatal(err)
	}

	const k = 10
	globalTop := map[uint32]bool{}
	for _, e := range repro.TopK(globalPR.Rank, k) {
		globalTop[e.Vertex] = true
	}

	fmt.Printf("%-5s %-10s %-12s %-12s %s\n", "rank", "account", "frogwild", "exact ppr", "in global top-10?")
	for i, e := range repro.TopK(res.Estimate, k) {
		inGlobal := ""
		if globalTop[e.Vertex] {
			inGlobal = "yes"
		}
		fmt.Printf("%-5d %-10d %-12.5f %-12.5f %s\n", i+1, e.Vertex, e.Score, exactPPR[e.Vertex], inGlobal)
	}

	fmt.Printf("\npersonalized accuracy (k=%d): mass %.4f, identification %.4f, tau %.3f\n",
		k,
		repro.NormalizedCapturedMass(exactPPR, res.Estimate, k),
		repro.ExactIdentification(exactPPR, res.Estimate, k),
		repro.KendallTauTopK(exactPPR, res.Estimate, k))
	fmt.Printf("overlap of personalized vs global top-%d (exact): %.0f%%\n",
		k, 100*repro.ExactIdentification(globalPR.Rank, exactPPR, k))
	fmt.Printf("network bytes: %d (vs exact PPR, which needs full power iteration)\n",
		res.Stats.Net.TotalBytes)
}
