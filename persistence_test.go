// Acceptance tests for the storage backend layer (PR 5): the gstore
// mmap path must reproduce the builder's graph bit-for-bit and make
// opening the 50k-vertex benchmark graph at least 10x faster than the
// edge-list rebuild path, and snapshots must round-trip through the
// persistence format with full provenance.
package repro_test

import (
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"repro"
)

// TestGStoreRoundTripBitIdentical pins the tentpole acceptance
// criterion: mmap-opening a gstore file yields a Graph bit-identical —
// raw CSR arrays, degrees, stats — to the builder-constructed one.
func TestGStoreRoundTripBitIdentical(t *testing.T) {
	g, err := repro.TwitterLikeGraph(5000, 42)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "g.csr")
	if err := repro.SaveGraphCSR(path, g); err != nil {
		t.Fatal(err)
	}
	got, err := repro.OpenGraphCSR(path)
	if err != nil {
		t.Fatal(err)
	}
	defer got.Close()

	a, b := g.CSRView(), got.CSRView()
	if a.NumVertices != b.NumVertices ||
		!reflect.DeepEqual(a.OutOff, b.OutOff) || !reflect.DeepEqual(a.OutAdj, b.OutAdj) ||
		!reflect.DeepEqual(a.InOff, b.InOff) || !reflect.DeepEqual(a.InAdj, b.InAdj) {
		t.Fatal("mmap-opened CSR arrays differ from builder-constructed graph")
	}
	for v := 0; v < g.NumVertices(); v += 97 {
		id := repro.VertexID(v)
		if g.OutDegree(id) != got.OutDegree(id) || g.InDegree(id) != got.InDegree(id) {
			t.Fatalf("degree mismatch at vertex %d", v)
		}
	}
	if s1, s2 := repro.ComputeGraphStats(g), repro.ComputeGraphStats(got); s1 != s2 {
		t.Fatalf("stats diverge:\nbuilder: %+v\nmmap:    %+v", s1, s2)
	}
}

// TestMmapOpenBeatsEdgeListRebuild pins the performance half of the
// criterion on the benchmark-scale graph: one mmap open (checksums
// verified) must be >= 10x faster than rebuilding from the edge-list
// file. The observed gap is orders of magnitude (text parsing and the
// counting sort are O(E); the mmap open touches the file once to
// checksum it), so 10x leaves plenty of CI noise headroom.
func TestMmapOpenBeatsEdgeListRebuild(t *testing.T) {
	if testing.Short() {
		t.Skip("50k-vertex graph build in -short mode")
	}
	g, err := repro.TwitterLikeGraph(50000, 7)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	edgePath := filepath.Join(dir, "g.txt")
	csrPath := filepath.Join(dir, "g.csr")
	if err := repro.SaveGraph(edgePath, g); err != nil {
		t.Fatal(err)
	}
	if err := repro.SaveGraphCSR(csrPath, g); err != nil {
		t.Fatal(err)
	}

	start := time.Now()
	rebuilt, err := repro.LoadGraph(edgePath)
	if err != nil {
		t.Fatal(err)
	}
	rebuildDur := time.Since(start)
	if rebuilt.NumEdges() != g.NumEdges() {
		t.Fatalf("edge-list rebuild lost edges: %d vs %d", rebuilt.NumEdges(), g.NumEdges())
	}

	// Best of three mmap opens: the first may pay cold page-cache
	// costs the rebuild path already amortized by writing the file.
	mmapDur := time.Duration(1<<62 - 1)
	for i := 0; i < 3; i++ {
		start = time.Now()
		opened, err := repro.OpenGraphCSR(csrPath)
		if err != nil {
			t.Fatal(err)
		}
		if d := time.Since(start); d < mmapDur {
			mmapDur = d
		}
		if opened.NumEdges() != g.NumEdges() {
			t.Fatal("mmap open lost edges")
		}
		opened.Close()
	}

	t.Logf("edge-list rebuild: %v, mmap open: %v (%.0fx)",
		rebuildDur, mmapDur, float64(rebuildDur)/float64(mmapDur))
	if rebuildDur < 10*mmapDur {
		t.Fatalf("mmap open %v not >= 10x faster than edge-list rebuild %v", mmapDur, rebuildDur)
	}
}

// TestSnapshotPersistenceFacade covers the facade surface: save a
// snapshot, load it against the same graph, and serve-compatible
// provenance survives.
func TestSnapshotPersistenceFacade(t *testing.T) {
	g, err := repro.TwitterLikeGraph(2000, 3)
	if err != nil {
		t.Fatal(err)
	}
	snap, err := repro.NewSnapshot(g, repro.SnapshotConfig{
		Engine: repro.ServeEngineFrogWild, Machines: 4, Seed: 11, MaxK: 30,
	})
	if err != nil {
		t.Fatal(err)
	}
	snap.Epoch = 5
	path := repro.SnapshotFilePath(t.TempDir())
	if err := repro.SaveSnapshot(path, snap); err != nil {
		t.Fatal(err)
	}
	got, err := repro.LoadSnapshot(path, g)
	if err != nil {
		t.Fatal(err)
	}
	if got.Epoch != 5 || got.Engine != snap.Engine || got.Seed != snap.Seed || !got.WarmStart {
		t.Fatalf("provenance lost: %+v", got)
	}
	if !reflect.DeepEqual(got.TopK(30), snap.TopK(30)) {
		t.Fatal("served answers diverge after persistence round trip")
	}

	// A different graph must be refused.
	other, err := repro.TwitterLikeGraph(1999, 3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := repro.LoadSnapshot(path, other); err == nil {
		t.Fatal("snapshot accepted against a different graph")
	}
}
