// Equivalence tests for the engine's WorkersPerMachine knob: every
// distributed entry point must produce byte-identical results — tallies,
// estimates and network meters — no matter how many workers shard each
// simulated machine's phases. This mirrors the Workers-knob tests the
// serial paths got in internal/frogwild and internal/montecarlo.
package repro_test

import (
	"reflect"
	"sync"
	"testing"

	"repro"
)

// equivWorkerCounts deliberately includes an odd prime that does not
// divide any chunk count evenly.
var equivWorkerCounts = []int{1, 2, 4, 7}

var equivSetup = sync.OnceValues(func() (*repro.Graph, *repro.Layout) {
	g, err := repro.PowerLawGraph(repro.PowerLawConfig{
		N: 3000, MeanOutDeg: 8, DegExponent: 2.0, PrefExponent: 1.1, Seed: 11,
	})
	if err != nil {
		panic(err)
	}
	lay, err := repro.NewLayout(g, 8, nil, 11)
	if err != nil {
		panic(err)
	}
	return g, lay
})

// engineArtifact collects everything the acceptance criteria pin:
// per-vertex tallies/estimates plus the run's network meters and
// per-superstep engine series.
type engineArtifact struct {
	Ints       []int64
	Floats     []float64
	Stats      repro.RunStats
	Supersteps int
}

// statsArtifact strips the wall-clock field (the only
// machine-dependent quantity) from RunStats for exact comparison.
func statsArtifact(s *repro.RunStats) repro.RunStats {
	c := *s
	c.WallSeconds = 0
	return c
}

func TestEngineWorkersBitIdentical(t *testing.T) {
	g, lay := equivSetup()
	cases := []struct {
		name string
		run  func(workers int) (engineArtifact, error)
	}{
		{"frogwild", func(workers int) (engineArtifact, error) {
			res, err := repro.RunFrogWild(g, repro.FrogWildConfig{
				Walkers: 6000, Iterations: 4, PS: 0.4, Layout: lay, Seed: 42,
				WorkersPerMachine: workers,
			})
			if err != nil {
				return engineArtifact{}, err
			}
			return engineArtifact{Ints: res.Counts, Floats: res.Estimate,
				Stats: statsArtifact(res.Stats), Supersteps: res.Stats.Supersteps}, nil
		}},
		{"frogwild-binomial-lowps", func(workers int) (engineArtifact, error) {
			res, err := repro.RunFrogWild(g, repro.FrogWildConfig{
				Walkers: 6000, Iterations: 4, PS: 0.1, Layout: lay, Seed: 7,
				Mode: repro.ScatterBinomial, WorkersPerMachine: workers,
			})
			if err != nil {
				return engineArtifact{}, err
			}
			return engineArtifact{Ints: res.Counts, Floats: res.Estimate,
				Stats: statsArtifact(res.Stats), Supersteps: res.Stats.Supersteps}, nil
		}},
		{"graphlabpr", func(workers int) (engineArtifact, error) {
			res, err := repro.RunGraphLabPR(g, repro.GraphLabPRConfig{
				Layout: lay, Iterations: 8, Seed: 42, WorkersPerMachine: workers,
			})
			if err != nil {
				return engineArtifact{}, err
			}
			return engineArtifact{Floats: res.Rank,
				Stats: statsArtifact(res.Stats), Supersteps: res.Stats.Supersteps}, nil
		}},
		{"gossip", func(workers int) (engineArtifact, error) {
			res, err := repro.RunGossip(g, repro.GossipConfig{
				Origin: 0, Rounds: 12, PS: 0.7, Layout: lay, Seed: 42,
				WorkersPerMachine: workers,
			})
			if err != nil {
				return engineArtifact{}, err
			}
			rounds := make([]int64, len(res.RoundReached))
			for v, r := range res.RoundReached {
				rounds[v] = int64(r)
			}
			rounds = append(rounds, int64(res.Informed))
			for _, c := range res.InformedByRound {
				rounds = append(rounds, int64(c))
			}
			return engineArtifact{Ints: rounds,
				Stats: statsArtifact(res.Stats), Supersteps: res.Stats.Supersteps}, nil
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ref, err := tc.run(1)
			if err != nil {
				t.Fatalf("workers=1: %v", err)
			}
			for _, workers := range equivWorkerCounts[1:] {
				got, err := tc.run(workers)
				if err != nil {
					t.Fatalf("workers=%d: %v", workers, err)
				}
				if !reflect.DeepEqual(got.Ints, ref.Ints) {
					t.Errorf("workers=%d: integer tallies diverge from workers=1", workers)
				}
				if !reflect.DeepEqual(got.Floats, ref.Floats) {
					t.Errorf("workers=%d: estimates diverge from workers=1", workers)
				}
				if !reflect.DeepEqual(got.Stats, ref.Stats) {
					t.Errorf("workers=%d: run stats (net meters/series) diverge from workers=1\n got %+v\nwant %+v",
						workers, got.Stats, ref.Stats)
				}
				if got.Supersteps != ref.Supersteps {
					t.Errorf("workers=%d: %d supersteps, want %d", workers, got.Supersteps, ref.Supersteps)
				}
			}
		})
	}
}

// TestEngineWorkersRejectsNegative checks the knob's validation at the
// public entry points.
func TestEngineWorkersRejectsNegative(t *testing.T) {
	g, lay := equivSetup()
	if _, err := repro.RunFrogWild(g, repro.FrogWildConfig{
		Walkers: 100, Iterations: 2, Layout: lay, WorkersPerMachine: -1,
	}); err == nil {
		t.Error("RunFrogWild accepted WorkersPerMachine=-1")
	}
	if _, err := repro.RunGraphLabPR(g, repro.GraphLabPRConfig{
		Layout: lay, Iterations: 2, WorkersPerMachine: -3,
	}); err == nil {
		t.Error("RunGraphLabPR accepted WorkersPerMachine=-3")
	}
	if _, err := repro.RunGossip(g, repro.GossipConfig{
		Origin: 0, Rounds: 2, Layout: lay, WorkersPerMachine: -2,
	}); err == nil {
		t.Error("RunGossip accepted WorkersPerMachine=-2")
	}
}
